"""Weighted hypergraph model of a gate-level circuit.

A circuit maps onto a hypergraph as follows (paper §3): every *vertex*
is either an ordinary gate or a *super-gate* (a Verilog module instance,
treated as a single vertex weighted by the number of gates it
contains), and every *hyperedge* is a net — the set of vertices whose
pins the net touches.

The structure is immutable once frozen: partitioning algorithms mutate a
:class:`~repro.hypergraph.partition_state.PartitionState` layered on top
of it, never the hypergraph itself.  This keeps the expensive adjacency
arrays shareable between the many partitioning runs a (k, b) sweep
performs.

Vertices and hyperedges are dense integer ids (``0..n-1``), with
optional string names kept in side arrays for diagnostics.  Pin lists
are stored in CSR-style flattened arrays so that iteration over a
vertex's edges or an edge's vertices is an O(degree) slice, not a hash
walk — the FM inner loop touches these arrays millions of times on
realistic circuits.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import HypergraphError

__all__ = ["Hypergraph", "HypergraphBuilder"]


def _csr_gather(
    ptr: np.ndarray, data: np.ndarray, ids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the CSR slices ``data[ptr[i]:ptr[i+1]]`` for ``ids``.

    Returns ``(values, counts)`` where ``values`` is the concatenation
    in ``ids`` order and ``counts[j]`` the slice length of ``ids[j]``.
    Fully vectorized — the index array is ``repeat(start) + ramp``.
    """
    ids = np.asarray(ids, dtype=np.int64)
    starts = ptr[ids]
    counts = ptr[ids + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=data.dtype), counts
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    idx = np.arange(total, dtype=np.int64) + np.repeat(starts - offsets, counts)
    return data[idx], counts


class Hypergraph:
    """An immutable weighted hypergraph.

    Use :class:`HypergraphBuilder` (or :meth:`from_edges`) to construct
    one.  All arrays are NumPy ``int64``; the object is hashable by
    identity and safe to share across partitioning runs.

    Attributes
    ----------
    vertex_weight:
        ``(num_vertices,)`` array of positive vertex weights (gate
        counts; a plain gate has weight 1, a super-gate the number of
        gates inside it).
    edge_weight:
        ``(num_edges,)`` array of positive hyperedge weights (all 1 for
        plain nets; coarsened hypergraphs carry accumulated weights).
    """

    __slots__ = (
        "vertex_weight",
        "edge_weight",
        "_edge_ptr",
        "_edge_pins",
        "_pin_edge",
        "_vertex_ptr",
        "_vertex_pins",
        "_neighbor_lists",
        "_vertex_edges_lists",
        "_edge_weight_list",
        "_vertex_weight_list",
        "vertex_names",
        "edge_names",
    )

    def __init__(
        self,
        vertex_weight: np.ndarray,
        edge_weight: np.ndarray,
        edge_ptr: np.ndarray,
        edge_pins: np.ndarray,
        vertex_names: Sequence[str] | None = None,
        edge_names: Sequence[str] | None = None,
    ) -> None:
        self.vertex_weight = vertex_weight
        self.edge_weight = edge_weight
        self._edge_ptr = edge_ptr
        self._edge_pins = edge_pins
        self.vertex_names = list(vertex_names) if vertex_names is not None else None
        self.edge_names = list(edge_names) if edge_names is not None else None
        self._validate()
        self._build_vertex_index()

    # -- construction ---------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        vertex_weights: Sequence[int],
        edges: Iterable[Sequence[int]],
        edge_weights: Sequence[int] | None = None,
        vertex_names: Sequence[str] | None = None,
        edge_names: Sequence[str] | None = None,
    ) -> "Hypergraph":
        """Build a hypergraph from explicit pin lists.

        Parameters
        ----------
        vertex_weights:
            One positive integer per vertex.
        edges:
            Iterable of pin lists; each pin list is a sequence of vertex
            ids.  Duplicate pins within one edge are collapsed.
        edge_weights:
            Optional per-edge weights (default all 1).
        """
        edge_lists = [sorted(set(int(v) for v in e)) for e in edges]
        ptr = np.zeros(len(edge_lists) + 1, dtype=np.int64)
        for i, e in enumerate(edge_lists):
            ptr[i + 1] = ptr[i] + len(e)
        pins = np.empty(int(ptr[-1]), dtype=np.int64)
        for i, e in enumerate(edge_lists):
            pins[ptr[i] : ptr[i + 1]] = e
        vw = np.asarray(vertex_weights, dtype=np.int64)
        if edge_weights is None:
            ew = np.ones(len(edge_lists), dtype=np.int64)
        else:
            ew = np.asarray(edge_weights, dtype=np.int64)
        return cls(vw, ew, ptr, pins, vertex_names, edge_names)

    @classmethod
    def from_csr(
        cls,
        vertex_weight: np.ndarray,
        edge_weight: np.ndarray,
        edge_ptr: np.ndarray,
        edge_pins: np.ndarray,
        vertex_names: Sequence[str] | None = None,
        edge_names: Sequence[str] | None = None,
    ) -> "Hypergraph":
        """Freeze pre-built CSR arrays into a hypergraph directly.

        The array-native construction boundary: bulk builders
        (:func:`~repro.hypergraph.build.streamed_flat_hypergraph`, the
        multilevel projection) assemble ``edge_ptr``/``edge_pins`` with
        vectorized passes and hand them over without any per-edge
        Python list round-trip.  Unlike :meth:`from_edges` the pin
        lists are **not** re-sorted or deduplicated — each edge's slice
        must already hold strictly increasing vertex ids (the order
        every query kernel assumes); the pointer array must start at 0,
        be non-decreasing and end at ``len(edge_pins)``.  Arrays are
        widened to the frozen int64 substrate
        (:func:`~repro.hypergraph.dtypes.require_int64` policy) but
        never copied when already int64.
        """
        from .dtypes import require_int64

        ptr = require_int64(np.asarray(edge_ptr))
        pins = require_int64(np.asarray(edge_pins))
        if len(ptr) == 0 or ptr[0] != 0 or int(ptr[-1]) != len(pins):
            raise HypergraphError(
                "edge pointer array must start at 0 and end at the pin count"
            )
        if len(ptr) > 1 and (np.diff(ptr) < 0).any():
            raise HypergraphError("edge pointer array must be non-decreasing")
        return cls(
            require_int64(np.asarray(vertex_weight)),
            require_int64(np.asarray(edge_weight)),
            ptr, pins, vertex_names, edge_names,
        )

    def _build_vertex_index(self) -> None:
        """Construct the transposed (vertex → edges) CSR arrays.

        Vectorized: a stable argsort of the pin array groups each
        vertex's incidences; the matching edge ids come from repeating
        edge ids by edge size.  O(pins log pins), no Python-level loop.
        Also retains ``_pin_edge`` — the owning edge of every entry of
        the edge-major pin array — which the vectorized
        :meth:`~repro.hypergraph.partition_state.PartitionState.recompute`
        scatters through, and seeds the lazy per-vertex neighbor cache.
        """
        n = len(self.vertex_weight)
        counts = np.zeros(n + 1, dtype=np.int64)
        if len(self._edge_pins):
            np.add.at(counts, self._edge_pins + 1, 1)
        self._vertex_ptr = np.cumsum(counts)
        self._neighbor_lists: list[list[int]] | None = None
        self._vertex_edges_lists: list[list[int]] | None = None
        self._edge_weight_list: list[int] | None = None
        self._vertex_weight_list: list[int] | None = None
        if len(self._edge_pins) == 0:
            self._pin_edge = np.empty(0, dtype=np.int64)
            self._vertex_pins = np.empty(0, dtype=np.int64)
            return
        sizes = np.diff(self._edge_ptr)
        self._pin_edge = np.repeat(
            np.arange(self.num_edges, dtype=np.int64), sizes
        )
        order = np.argsort(self._edge_pins, kind="stable")
        self._vertex_pins = self._pin_edge[order]

    def _validate(self) -> None:
        n = self.num_vertices
        if (self.vertex_weight <= 0).any():
            bad = int(np.argmax(self.vertex_weight <= 0))
            raise HypergraphError(f"vertex {bad} has non-positive weight")
        if (self.edge_weight <= 0).any():
            bad = int(np.argmax(self.edge_weight <= 0))
            raise HypergraphError(f"edge {bad} has non-positive weight")
        if len(self._edge_pins) and (
            self._edge_pins.min() < 0 or self._edge_pins.max() >= n
        ):
            raise HypergraphError("edge pin refers to a vertex id out of range")
        if len(self.edge_weight) + 1 != len(self._edge_ptr):
            raise HypergraphError("edge pointer array length mismatch")
        if self.vertex_names is not None and len(self.vertex_names) != n:
            raise HypergraphError("vertex_names length mismatch")
        if self.edge_names is not None and len(self.edge_names) != self.num_edges:
            raise HypergraphError("edge_names length mismatch")

    # -- basic queries ---------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.vertex_weight)

    @property
    def num_edges(self) -> int:
        """Number of hyperedges."""
        return len(self.edge_weight)

    @property
    def num_pins(self) -> int:
        """Total number of (vertex, edge) incidences."""
        return len(self._edge_pins)

    @property
    def total_weight(self) -> int:
        """Sum of all vertex weights (total gate count of the circuit)."""
        return int(self.vertex_weight.sum())

    @property
    def pin_vertices(self) -> np.ndarray:
        """Flat edge-major pin array: the vertex of every incidence."""
        return self._edge_pins

    @property
    def pin_edges(self) -> np.ndarray:
        """Flat edge-major owner array: the edge of every incidence
        (aligned with :attr:`pin_vertices`)."""
        return self._pin_edge

    def edge_vertices(self, e: int) -> np.ndarray:
        """Vertices on hyperedge ``e`` (read-only view, sorted)."""
        return self._edge_pins[self._edge_ptr[e] : self._edge_ptr[e + 1]]

    def vertex_edges(self, v: int) -> np.ndarray:
        """Hyperedges incident to vertex ``v`` (read-only view)."""
        return self._vertex_pins[self._vertex_ptr[v] : self._vertex_ptr[v + 1]]

    def edge_size(self, e: int) -> int:
        """Number of pins on hyperedge ``e``."""
        return int(self._edge_ptr[e + 1] - self._edge_ptr[e])

    def vertex_degree(self, v: int) -> int:
        """Number of hyperedges incident to vertex ``v``."""
        return int(self._vertex_ptr[v + 1] - self._vertex_ptr[v])

    def vertex_name(self, v: int) -> str:
        """Human-readable name of vertex ``v`` (falls back to ``v<id>``)."""
        if self.vertex_names is not None:
            return self.vertex_names[v]
        return f"v{v}"

    def edge_name(self, e: int) -> str:
        """Human-readable name of hyperedge ``e`` (falls back to ``e<id>``)."""
        if self.edge_names is not None:
            return self.edge_names[e]
        return f"e{e}"

    def iter_edges(self) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(edge_id, pin_array)`` for every hyperedge."""
        for e in range(self.num_edges):
            yield e, self.edge_vertices(e)

    def edges_pins(self, edges: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Bulk CSR gather: concatenated pin lists of many edges.

        Returns ``(pins, counts)`` — the pins of ``edges[0]``, then
        ``edges[1]``, ..., plus the per-edge pin counts (so callers can
        map flat entries back to their edge with ``np.repeat``).
        """
        return _csr_gather(self._edge_ptr, self._edge_pins, edges)

    def vertices_edges(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Bulk CSR gather: concatenated incident-edge lists of many
        vertices, as ``(edges, counts)`` (see :meth:`edges_pins`)."""
        return _csr_gather(self._vertex_ptr, self._vertex_pins, vertices)

    def neighbor_array(self, v: int) -> np.ndarray:
        """Vertices sharing at least one hyperedge with ``v`` — sorted
        unique ``int64`` array (see :meth:`neighbor_lists`)."""
        return np.asarray(self.neighbor_list(v), dtype=np.int64)

    def neighbor_list(self, v: int) -> list[int]:
        """Neighbors of ``v`` as a cached plain-``int`` list.

        The FM inner loop consumes neighbors element-wise (dict lookups,
        heap keys); handing it native ints skips a per-move
        ``ndarray.tolist()`` conversion.
        """
        return self.neighbor_lists()[v]

    def neighbor_lists(self) -> list[list[int]]:
        """The whole vertex → neighbor adjacency as nested plain lists.

        Built once for the entire graph — one bulk CSR gather expands
        every vertex's incident edges to their pins, then a single
        ``np.unique`` over combined ``(vertex, neighbor)`` keys sorts
        and deduplicates all adjacency rows at once.  The hypergraph is
        immutable, so the cache can never go stale; per-row semantics
        match the old per-vertex path exactly (sorted unique neighbor
        ids, the vertex itself excluded).
        """
        lists = self._neighbor_lists
        if lists is None:
            n = self.num_vertices
            if self.num_pins == 0:
                lists = [[] for _ in range(n)]
            else:
                degrees = np.diff(self._vertex_ptr)
                owners = np.repeat(np.arange(n, dtype=np.int64), degrees)
                pins, counts = _csr_gather(
                    self._edge_ptr, self._edge_pins, self._vertex_pins
                )
                keys = np.unique(np.repeat(owners, counts) * n + pins)
                owner, neigh = np.divmod(keys, n)
                keep = owner != neigh
                owner = owner[keep]
                neigh = neigh[keep]
                ptr = np.concatenate(
                    ([0], np.cumsum(np.bincount(owner, minlength=n)))
                ).tolist()
                flat = neigh.tolist()
                lists = [flat[ptr[u]:ptr[u + 1]] for u in range(n)]
            self._neighbor_lists = lists
        return lists

    def neighbors(self, v: int) -> set[int]:
        """All vertices sharing at least one hyperedge with ``v``."""
        return set(self.neighbor_list(v))

    def vertex_edges_list(self, v: int) -> list[int]:
        """Incident edges of ``v`` as a plain-``int`` list.

        Built for the whole graph on first use (one pass over the CSR
        arrays); scalar move/gain bookkeeping iterates these lists to
        avoid per-element NumPy scalar extraction, which dominates at
        the typical netlist degree of 2–5.
        """
        return self.vertex_edges_lists()[v]

    def vertex_edges_lists(self) -> list[list[int]]:
        """The whole vertex → incident-edge adjacency as nested plain
        lists (see :meth:`vertex_edges_list`); built once, cached."""
        lists = self._vertex_edges_lists
        if lists is None:
            flat = self._vertex_pins.tolist()
            ptr = self._vertex_ptr.tolist()
            lists = [
                flat[ptr[u]:ptr[u + 1]] for u in range(self.num_vertices)
            ]
            self._vertex_edges_lists = lists
        return lists

    @property
    def edge_weight_list(self) -> list[int]:
        """``edge_weight`` as a cached plain-``int`` list (see
        :meth:`vertex_edges_list` for why the scalar paths want it)."""
        if self._edge_weight_list is None:
            self._edge_weight_list = self.edge_weight.tolist()
        return self._edge_weight_list

    @property
    def vertex_weight_list(self) -> list[int]:
        """``vertex_weight`` as a cached plain-``int`` list."""
        if self._vertex_weight_list is None:
            self._vertex_weight_list = self.vertex_weight.tolist()
        return self._vertex_weight_list

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Hypergraph(vertices={self.num_vertices}, edges={self.num_edges}, "
            f"pins={self.num_pins}, weight={self.total_weight})"
        )


class HypergraphBuilder:
    """Incremental builder that assigns dense ids from string names.

    The Verilog → hypergraph translators accumulate vertices and nets by
    name; the builder deduplicates names and emits a frozen
    :class:`Hypergraph` with stable name side-tables.
    """

    def __init__(self) -> None:
        self._vertex_ids: dict[str, int] = {}
        self._weights: list[int] = []
        self._edges: list[tuple[str, list[int]]] = []

    def add_vertex(self, name: str, weight: int = 1) -> int:
        """Register a vertex; re-adding an existing name raises."""
        if name in self._vertex_ids:
            raise HypergraphError(f"duplicate vertex name {name!r}")
        vid = len(self._weights)
        self._vertex_ids[name] = vid
        self._weights.append(int(weight))
        return vid

    def vertex_id(self, name: str) -> int:
        """Dense id previously assigned to ``name``."""
        return self._vertex_ids[name]

    def has_vertex(self, name: str) -> bool:
        """Whether ``name`` is already registered."""
        return name in self._vertex_ids

    def add_edge(self, name: str, pins: Iterable[int | str]) -> int:
        """Register a hyperedge over vertex ids or names.

        Edges with fewer than two distinct pins are still recorded (they
        are legal, merely never cut); callers that want to drop them can
        filter before freezing.
        """
        resolved: list[int] = []
        for p in pins:
            if isinstance(p, str):
                resolved.append(self._vertex_ids[p])
            else:
                resolved.append(int(p))
        self._edges.append((name, resolved))
        return len(self._edges) - 1

    @property
    def num_vertices(self) -> int:
        return len(self._weights)

    def freeze(self, drop_single_pin_edges: bool = True) -> Hypergraph:
        """Produce the immutable hypergraph.

        Parameters
        ----------
        drop_single_pin_edges:
            Nets touching fewer than two distinct vertices can never be
            cut; dropping them (the default) shrinks the edge set that
            every partitioning pass scans.
        """
        names = [""] * len(self._weights)
        for name, vid in self._vertex_ids.items():
            names[vid] = name
        kept_edges: list[list[int]] = []
        kept_names: list[str] = []
        for ename, pins in self._edges:
            distinct = sorted(set(pins))
            if drop_single_pin_edges and len(distinct) < 2:
                continue
            kept_edges.append(distinct)
            kept_names.append(ename)
        return Hypergraph.from_edges(
            self._weights, kept_edges, vertex_names=names, edge_names=kept_names
        )
