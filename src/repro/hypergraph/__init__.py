"""Hypergraph substrate: circuit-as-hypergraph modeling and partition state.

Public surface:

* :class:`Hypergraph`, :class:`HypergraphBuilder` — the immutable
  weighted hypergraph and its incremental constructor.
  :meth:`Hypergraph.from_csr` is the array-native freeze boundary: bulk
  builders hand over finished ``edge_ptr``/``edge_pins`` arrays with no
  per-edge list round-trip.
* :class:`PartitionState` — mutable k-way assignment with incremental
  cut tracking (all partitioners operate through it).
* :func:`hyperedge_cut`, :func:`connectivity_cut`, :func:`part_weights`,
  :func:`load_imbalance`, :func:`within_balance` — oracle metrics.
* :func:`read_hgr` / :func:`write_hgr` — hMetis file interchange.
* :func:`flat_hypergraph` / :func:`hierarchy_hypergraph` — builders from
  elaborated Verilog netlists (see :mod:`repro.hypergraph.build`);
  :func:`streamed_flat_hypergraph` is the chunked array-native variant
  behind ``flat_hypergraph``'s :class:`NetlistCSR` dispatch.
* :func:`index_dtype` / :func:`require_int64` — the index dtype policy
  shared by the streamed construction paths
  (:mod:`repro.hypergraph.dtypes`).
"""

from .hypergraph import Hypergraph, HypergraphBuilder
from .dtypes import INT32_MAX, index_dtype, require_int64
from .partition_state import PartitionState
from .metrics import (
    hyperedge_cut,
    connectivity_cut,
    part_weights,
    load_imbalance,
    within_balance,
)
from .io import read_hgr, write_hgr, loads_hgr, dumps_hgr
from .build import (
    Cluster,
    Clustering,
    flat_hypergraph,
    hierarchy_hypergraph,
    project_hypergraph,
    streamed_flat_hypergraph,
)
from .analysis import (
    CircuitStats,
    StuckXReport,
    analyze_netlist,
    locality_fraction,
    stuck_x_report,
)

__all__ = [
    "Cluster",
    "Clustering",
    "flat_hypergraph",
    "hierarchy_hypergraph",
    "project_hypergraph",
    "streamed_flat_hypergraph",
    "INT32_MAX",
    "index_dtype",
    "require_int64",
    "CircuitStats",
    "StuckXReport",
    "analyze_netlist",
    "locality_fraction",
    "stuck_x_report",
    "Hypergraph",
    "HypergraphBuilder",
    "PartitionState",
    "hyperedge_cut",
    "connectivity_cut",
    "part_weights",
    "load_imbalance",
    "within_balance",
    "read_hgr",
    "write_hgr",
    "loads_hgr",
    "dumps_hgr",
]
