"""Circuit → hypergraph translation and the super-gate clustering model.

The paper's hypergraph (§3) has two kinds of vertices: ordinary gates
and *super-gates* — Verilog module instances treated as one vertex
weighted by their internal gate count.  A :class:`Clustering` captures
exactly that: an ordered list of clusters, each either a single gate or
a whole instance subtree, together with the mapping back to gate ids
(which the Time Warp engine consumes as its LP list).

Flattening (§3.2) is a Clustering→Clustering operation: one super-gate
cluster is replaced by its next hierarchy level (its direct gates as
singletons plus its child instances as smaller super-gates), and the
hypergraph is rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PartitionError
from ..obs.recorder import NULL_RECORDER, Recorder
from ..verilog.netlist import HierNode, Netlist
from ..verilog.netlist_csr import NetlistCSR
from .dtypes import index_dtype, require_int64
from .hypergraph import Hypergraph, _csr_gather

__all__ = ["Cluster", "Clustering", "flat_hypergraph", "hierarchy_hypergraph",
           "project_hypergraph", "streamed_flat_hypergraph"]


@dataclass(frozen=True)
class Cluster:
    """One hypergraph vertex: a gate or a super-gate.

    ``node`` is the backing instance-tree node for super-gates (used by
    flattening); plain gates have ``node=None``.  ``weight`` is the
    gate count (the paper's load unit).
    """

    name: str
    gate_ids: tuple[int, ...]
    weight: int
    node: HierNode | None = None

    @property
    def is_super_gate(self) -> bool:
        """Whether this cluster can still be flattened."""
        return self.node is not None and bool(self.node.children or len(self.gate_ids) > 1)


class Clustering:
    """An ordered set of clusters covering every gate exactly once.

    ``gate_weights`` optionally replaces the paper's gate-count load
    metric with per-gate weights — the activity-based metric the paper
    names as future work ("our load metric is the number of gates,
    which is not entirely adequate").  Pass a per-gate array (e.g.
    ``1 + activity`` from a profiling run of
    :class:`~repro.sim.sequential.SequentialSimulator`); cluster and
    hypergraph vertex weights then measure expected simulation load
    instead of area.
    """

    def __init__(
        self,
        netlist: Netlist,
        clusters: list[Cluster],
        gate_weights: "np.ndarray | None" = None,
    ) -> None:
        self.netlist = netlist
        self.clusters = clusters
        self.gate_weights = gate_weights
        self._hypergraph: Hypergraph | None = None
        covered = sum(len(c.gate_ids) for c in clusters)
        if covered != netlist.num_gates:
            raise PartitionError(
                f"clustering covers {covered} of {netlist.num_gates} gates"
            )
        self._check_weights(netlist, gate_weights)

    @staticmethod
    def _check_weights(netlist: Netlist, gate_weights: np.ndarray | None) -> None:
        if gate_weights is None:
            return
        if len(gate_weights) != netlist.num_gates:
            raise PartitionError(
                f"gate_weights has {len(gate_weights)} entries for "
                f"{netlist.num_gates} gates"
            )
        if len(gate_weights) and int(np.min(gate_weights)) < 1:
            raise PartitionError("gate_weights must be >= 1")

    def _cluster_weight(self, gate_ids: tuple[int, ...]) -> int:
        if self.gate_weights is None:
            return len(gate_ids)
        return int(sum(int(self.gate_weights[g]) for g in gate_ids))

    # -- constructors ------------------------------------------------------

    @classmethod
    def top_level(
        cls, netlist: Netlist, gate_weights: "np.ndarray | None" = None
    ) -> "Clustering":
        """The design-driven view: the netlist's *visible nodes*.

        Top-level gates become singleton clusters; each first-level
        module instance becomes one super-gate cluster (paper §3, §4.3).
        """
        cls._check_weights(netlist, gate_weights)
        clusters: list[Cluster] = []
        weigh = (
            (lambda gids: len(gids))
            if gate_weights is None
            else (lambda gids: int(sum(int(gate_weights[g]) for g in gids)))
        )
        root = netlist.hierarchy
        for gid in root.gate_ids:
            gate = netlist.gates[gid]
            clusters.append(Cluster(gate.name, (gid,), weigh((gid,))))
        for child in root.children.values():
            gates = tuple(sorted(child.subtree_gates()))
            if not gates:
                continue  # empty wrapper module: nothing to simulate
            clusters.append(Cluster(child.name, gates, weigh(gates), node=child))
        return cls(netlist, clusters, gate_weights)

    @classmethod
    def flat(
        cls, netlist: Netlist, gate_weights: "np.ndarray | None" = None
    ) -> "Clustering":
        """The flattened-netlist view: every gate its own vertex.

        This is the input the paper gave hMetis.
        """
        cls._check_weights(netlist, gate_weights)
        weigh = (
            (lambda gid: 1)
            if gate_weights is None
            else (lambda gid: int(gate_weights[gid]))
        )
        clusters = [
            Cluster(g.name, (g.gid,), weigh(g.gid)) for g in netlist.gates
        ]
        return cls(netlist, clusters, gate_weights)

    # -- flattening ----------------------------------------------------------

    def flatten(self, index: int) -> "Clustering":
        """Replace super-gate ``index`` by its next hierarchy level.

        Its direct gates become singleton clusters and each child
        instance becomes a (smaller) super-gate; other clusters keep
        their order.  Raises :class:`PartitionError` for plain gates.
        """
        target = self.clusters[index]
        if target.node is None:
            raise PartitionError(
                f"cluster {target.name!r} is a plain gate, cannot flatten"
            )
        replacement: list[Cluster] = []
        node = target.node
        for gid in node.gate_ids:
            gate = self.netlist.gates[gid]
            replacement.append(Cluster(gate.name, (gid,), self._cluster_weight((gid,))))
        for child in node.children.values():
            gates = tuple(sorted(child.subtree_gates()))
            if not gates:
                continue
            replacement.append(
                Cluster(
                    f"{target.name}.{child.name}",
                    gates,
                    self._cluster_weight(gates),
                    node=child,
                )
            )
        new_clusters = (
            self.clusters[:index] + replacement + self.clusters[index + 1 :]
        )
        return Clustering(self.netlist, new_clusters, self.gate_weights)

    def largest_super_gate(self, among: list[int] | None = None) -> int | None:
        """Index of the heaviest flattenable cluster (optionally within
        a vertex subset), or None if everything is a plain gate."""
        best: tuple[int, int] | None = None
        indices = range(len(self.clusters)) if among is None else among
        for i in indices:
            c = self.clusters[i]
            if c.is_super_gate:
                cand = (c.weight, -i)
                if best is None or cand > (best[0], -best[1]):
                    best = (c.weight, i)
        return None if best is None else best[1]

    # -- hypergraph ------------------------------------------------------------

    def hypergraph(self) -> Hypergraph:
        """Hypergraph over the clusters: one hyperedge per net spanning
        two or more clusters (cached)."""
        if self._hypergraph is None:
            self._hypergraph = self._build_hypergraph()
        return self._hypergraph

    def _build_hypergraph(self) -> Hypergraph:
        netlist = self.netlist
        gate_cluster = [0] * netlist.num_gates
        for ci, cluster in enumerate(self.clusters):
            for gid in cluster.gate_ids:
                gate_cluster[gid] = ci
        edges: list[list[int]] = []
        edge_names: list[str] = []
        for nid in range(netlist.num_nets):
            touched: set[int] = set()
            driver = netlist.net_driver[nid]
            if driver >= 0:
                touched.add(gate_cluster[driver])
            for gid in netlist.net_sinks[nid]:
                touched.add(gate_cluster[gid])
            if len(touched) > 1:
                edges.append(sorted(touched))
                edge_names.append(netlist.net_name(nid))
        weights = [c.weight for c in self.clusters]
        names = [c.name for c in self.clusters]
        return Hypergraph.from_edges(
            weights, edges, vertex_names=names, edge_names=edge_names
        )

    # -- bridges to the simulator ----------------------------------------------

    def gate_clusters(self) -> list[list[int]]:
        """Gate-id lists per cluster (the Time Warp engine's LP list)."""
        return [list(c.gate_ids) for c in self.clusters]

    def __len__(self) -> int:
        return len(self.clusters)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        supers = sum(1 for c in self.clusters if c.is_super_gate)
        return (
            f"Clustering({len(self.clusters)} clusters, {supers} super-gates, "
            f"{self.netlist.num_gates} gates)"
        )


def flat_hypergraph(netlist: "Netlist | NetlistCSR") -> Hypergraph:
    """Gate-level hypergraph of the flattened netlist (hMetis's input).

    Dispatches on the netlist form: the object model goes through
    :class:`Clustering` (per-gate Python objects, carries names), an
    array-native :class:`~repro.verilog.netlist_csr.NetlistCSR` goes
    through :func:`streamed_flat_hypergraph` (O(pins) arrays, no
    per-gate Python work).  Both produce the identical hypergraph for
    the same circuit — ``tests/test_stream_circuits.py`` pins that the
    streamed build of ``NetlistCSR.from_netlist(nl)`` is bit-identical
    to the object build of ``nl``.
    """
    if isinstance(netlist, NetlistCSR):
        return streamed_flat_hypergraph(netlist)
    return Clustering.flat(netlist).hypergraph()


def streamed_flat_hypergraph(
    csr: NetlistCSR, recorder: Recorder = NULL_RECORDER
) -> Hypergraph:
    """Chunk-built gate-level hypergraph of an array-native netlist.

    Semantics match :meth:`Clustering._build_hypergraph` with singleton
    clusters exactly: one hyperedge per net touching two or more
    distinct gates (driver, when one exists, plus sink gates), edges
    ordered by net id, pins sorted ascending, all weights 1.

    The construction is pure array work sized O(pins): incidence pairs
    are materialized at the narrow width
    (:func:`~repro.hypergraph.dtypes.index_dtype`), deduplicated with
    one lexsort, and counted per net — no per-gate or per-net Python
    lists at any point, which is what keeps peak build RSS at a small
    constant times the pin count (asserted by
    ``benchmarks/bench_scale_ladder.py``).
    """
    n_gates = csr.num_gates
    dt = index_dtype(max(csr.num_nets, n_gates))
    # incidence pairs: every gate touches its output net (driver) and
    # each input-pin net (sink)
    pin_gate = np.repeat(
        np.arange(n_gates, dtype=dt), np.diff(csr.pin_ptr)
    )
    nets = np.concatenate(
        (csr.gate_output.astype(dt, copy=False),
         csr.pin_net.astype(dt, copy=False))
    )
    gates = np.concatenate((np.arange(n_gates, dtype=dt), pin_gate))
    del pin_gate
    order = np.lexsort((gates, nets))
    nets = nets[order]
    gates = gates[order]
    del order
    # drop duplicate (net, gate) pairs: a gate reading one net through
    # several pins (or reading its own output) is one incidence
    keep = np.ones(len(nets), dtype=bool)
    if len(nets) > 1:
        keep[1:] = (nets[1:] != nets[:-1]) | (gates[1:] != gates[:-1])
    nets = nets[keep]
    gates = gates[keep]
    del keep
    # edge per net with >= 2 distinct gates, in ascending net order
    if len(nets):
        starts = np.flatnonzero(
            np.concatenate(([True], nets[1:] != nets[:-1]))
        )
        sizes = np.diff(np.concatenate((starts, [len(nets)])))
    else:
        starts = np.empty(0, dtype=np.int64)
        sizes = starts
    multi = sizes >= 2
    edge_sizes = sizes[multi]
    pin_keep = np.repeat(multi, sizes)
    edge_pins = gates[pin_keep]  # from_csr widens at the freeze boundary
    num_edges = len(edge_sizes)
    edge_ptr = np.zeros(num_edges + 1, dtype=np.int64)
    np.cumsum(edge_sizes, dtype=np.int64, out=edge_ptr[1:])
    if recorder.enabled:
        recorder.incr("part.build.gates", n_gates)
        recorder.incr("part.build.nets", csr.num_nets)
        recorder.incr("part.build.pins", csr.num_pins)
        recorder.incr("part.build.edges", num_edges)
        recorder.incr("part.build.edge_pins", len(edge_pins))
    return Hypergraph.from_csr(
        vertex_weight=np.ones(n_gates, dtype=np.int64),
        edge_weight=np.ones(num_edges, dtype=np.int64),
        edge_ptr=edge_ptr,
        edge_pins=edge_pins,
    )


#: splitmix64 finalizer seeds for the two independent pin-set
#: fingerprints of :func:`_edge_fingerprints`
_FP_SEED1 = np.uint64(0x9E3779B97F4A7C15)
_FP_SEED2 = np.uint64(0xD1B54A32D192ED03)


def _mix64(x: np.ndarray, seed: np.uint64) -> np.ndarray:
    """splitmix64 finalizer over a uint64 array (wraps mod 2^64)."""
    z = x + seed
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def _edge_fingerprints(
    pins: np.ndarray, starts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Two independent 64-bit pin-set fingerprints per CSR segment.

    Each fingerprint is a sum (mod 2^64) of a mixed pin id over the
    edge's segment — associative, so the segmented ``reduceat`` is
    exact.  Equal pin sets always collide by construction; unequal
    sets collide with probability ~2^-128 per pair, and the projection
    verifies every adjacent fingerprint match against the actual pin
    content anyway, so a collision costs a rare exact-regroup fallback,
    never correctness (stress-tested by forcing this function to a
    constant).
    """
    x = pins.astype(np.uint64, copy=False)
    return (
        np.add.reduceat(_mix64(x, _FP_SEED1), starts),
        np.add.reduceat(_mix64(x, _FP_SEED2), starts),
    )


def project_hypergraph(hg: Hypergraph, mapping: np.ndarray) -> Hypergraph:
    """Contract ``hg`` along a vertex→cluster ``mapping``.

    The coarse hypergraph of multilevel partitioning: cluster weights
    are the summed fine vertex weights, every edge is rewritten to its
    clusters' ids, edges collapsing to a single cluster disappear
    (they can never be cut again) and parallel edges — distinct fine
    edges with identical coarse pin sets — accumulate their weights.
    Together these rules make projection *cut-exact*: for any coarse
    assignment ``A``, the weighted cut of ``A`` on the coarse
    hypergraph equals the weighted cut of ``A[mapping]`` on ``hg``.

    Fully array-native: one lexsort rewrites and dedupes pins within
    each edge, parallel edges are grouped by a fingerprint sort with
    exact adjacent-content verification (collisions fall back to an
    exact per-run regroup — see :func:`_edge_fingerprints`), weights
    merge with a segmented scatter-add, and the coarse CSR freezes
    through :meth:`Hypergraph.from_csr` with no per-edge Python lists.
    Output is byte-identical to the retained reference
    (:func:`_project_hypergraph_reference`): coarse edges ordered by
    first fine occurrence, pins ascending.
    """
    mapping = np.asarray(mapping, dtype=np.int64)
    if mapping.shape != (hg.num_vertices,):
        raise PartitionError(
            f"mapping must have one entry per vertex "
            f"({hg.num_vertices}), got shape {mapping.shape}"
        )
    num_coarse = int(mapping.max()) + 1 if mapping.size else 0
    coarse_weights = np.zeros(num_coarse, dtype=np.int64)
    np.add.at(coarse_weights, mapping, hg.vertex_weight)

    # rewrite every pin to its cluster, then dedupe within each edge:
    # sort (edge, coarse pin) pairs once and drop repeated rows
    pin_edge = hg.pin_edges
    pin_coarse = mapping[hg.pin_vertices]
    order = np.lexsort((pin_coarse, pin_edge))
    e_sorted = pin_edge[order]
    v_sorted = pin_coarse[order]
    keep = np.ones(len(order), dtype=bool)
    if len(order) > 1:
        keep[1:] = (e_sorted[1:] != e_sorted[:-1]) | (v_sorted[1:] != v_sorted[:-1])
    e_kept = e_sorted[keep]
    v_kept = v_sorted[keep]

    # surviving edges (>= 2 coarse pins), pins contiguous and ascending
    if len(e_kept):
        starts_all = np.flatnonzero(
            np.concatenate(([True], e_kept[1:] != e_kept[:-1]))
        )
        sizes_all = np.diff(np.concatenate((starts_all, [len(e_kept)])))
    else:
        starts_all = np.empty(0, dtype=np.int64)
        sizes_all = starts_all
    multi = sizes_all >= 2
    pins = v_kept[np.repeat(multi, sizes_all)]
    esz = sizes_all[multi]
    w_fine = hg.edge_weight[e_kept[starts_all[multi]]]
    m = len(esz)
    if m == 0:
        return Hypergraph.from_csr(
            coarse_weights, np.empty(0, dtype=np.int64),
            np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64),
        )
    eptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(esz, dtype=np.int64, out=eptr[1:])

    # group parallel edges: sort by (size, fingerprint), verify every
    # adjacent fingerprint match against the actual pins, and chain
    # verified matches into groups via a running leader index
    h1, h2 = _edge_fingerprints(pins, eptr[:-1])
    sort_order = np.lexsort((h2, h1, esz))
    esz_s = esz[sort_order]
    h1_s = h1[sort_order]
    h2_s = h2[sort_order]
    same_fp = np.zeros(m, dtype=bool)
    same_fp[1:] = (esz_s[1:] == esz_s[:-1]) & (h1_s[1:] == h1_s[:-1]) \
        & (h2_s[1:] == h2_s[:-1])
    same = np.zeros(m, dtype=bool)
    cand = np.flatnonzero(same_fp)  # positions whose predecessor matches
    bad = np.empty(0, dtype=np.int64)
    if len(cand):
        pa, ca = _csr_gather(eptr, pins, sort_order[cand - 1])
        pb, _ = _csr_gather(eptr, pins, sort_order[cand])
        neq = (pa != pb).astype(np.int64)
        seg = np.concatenate(([0], np.cumsum(ca)[:-1]))
        mismatch = np.add.reduceat(neq, seg) > 0
        same[cand] = ~mismatch
        bad = cand[mismatch]
    leader = np.maximum.accumulate(np.where(same, -1, np.arange(m)))
    if len(bad):
        # true fingerprint collision (~2^-128 per pair): regroup the
        # enclosing fingerprint runs exactly, by pin-content identity
        fp_run = np.cumsum(~same_fp)
        for r in np.unique(fp_run[bad]):
            first: dict[tuple[int, ...], int] = {}
            for i in np.flatnonzero(fp_run == r).tolist():
                e = sort_order[i]
                key = tuple(pins[eptr[e]:eptr[e + 1]].tolist())
                leader[i] = first.setdefault(key, i)

    # one coarse edge per group, ordered by first fine occurrence (the
    # reference dict's insertion order), weights summed over members
    min_orig = np.full(m, m, dtype=np.int64)
    np.minimum.at(min_orig, leader, sort_order)
    wsum = np.zeros(m, dtype=np.int64)
    np.add.at(wsum, leader, w_fine[sort_order])
    leaders = np.flatnonzero(min_orig < m)
    g_order = leaders[np.argsort(min_orig[leaders], kind="stable")]
    lead_e = sort_order[g_order]
    g_pins, g_sizes = _csr_gather(eptr, pins, lead_e)
    g_ptr = np.zeros(len(g_order) + 1, dtype=np.int64)
    np.cumsum(g_sizes, dtype=np.int64, out=g_ptr[1:])
    return Hypergraph.from_csr(coarse_weights, wsum[g_order], g_ptr, g_pins)


def _project_hypergraph_reference(
    hg: Hypergraph, mapping: np.ndarray
) -> Hypergraph:
    """Reference contraction with tuple-dict parallel-edge dedup.

    The pre-vectorization implementation, retained verbatim as the
    byte-identity oracle for :func:`project_hypergraph`
    (``tests/test_coarsen_vectorized.py``).  Semantics are the spec:
    coarse edges appear in first-fine-occurrence order, keyed by their
    sorted coarse pin tuple, weights accumulated over parallel edges.
    """
    mapping = np.asarray(mapping, dtype=np.int64)
    if mapping.shape != (hg.num_vertices,):
        raise PartitionError(
            f"mapping must have one entry per vertex "
            f"({hg.num_vertices}), got shape {mapping.shape}"
        )
    num_coarse = int(mapping.max()) + 1 if mapping.size else 0
    coarse_weights = np.zeros(num_coarse, dtype=np.int64)
    np.add.at(coarse_weights, mapping, hg.vertex_weight)

    pin_edge = hg.pin_edges
    pin_coarse = mapping[hg.pin_vertices]
    order = np.lexsort((pin_coarse, pin_edge))
    e_sorted = pin_edge[order]
    v_sorted = pin_coarse[order]
    keep = np.ones(len(order), dtype=bool)
    if len(order) > 1:
        keep[1:] = (e_sorted[1:] != e_sorted[:-1]) | (v_sorted[1:] != v_sorted[:-1])
    e_kept = e_sorted[keep]
    v_kept = v_sorted[keep].tolist()
    starts = np.flatnonzero(
        np.concatenate(([True], e_kept[1:] != e_kept[:-1]))
    ) if len(e_kept) else np.empty(0, dtype=np.int64)
    ends = np.concatenate((starts[1:], [len(e_kept)])) if len(starts) else starts
    edge_ids = e_kept[starts].tolist() if len(starts) else []
    edge_weight = hg.edge_weight.tolist()

    acc: dict[tuple[int, ...], int] = {}
    for e, s, t in zip(edge_ids, starts.tolist(), ends.tolist()):
        if t - s < 2:
            continue  # internal to one cluster: never cut again
        key = tuple(v_kept[s:t])  # already sorted by the lexsort
        acc[key] = acc.get(key, 0) + edge_weight[e]
    return Hypergraph.from_edges(
        coarse_weights.tolist(), list(acc.keys()), list(acc.values())
    )


def hierarchy_hypergraph(netlist: Netlist) -> Hypergraph:
    """Visible-node hypergraph of the design hierarchy (the paper's)."""
    return Clustering.top_level(netlist).hypergraph()
