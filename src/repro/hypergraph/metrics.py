"""Stand-alone partition quality metrics.

These functions recompute metrics from scratch given a hypergraph and a
raw assignment array.  They are intentionally independent of
:class:`~repro.hypergraph.partition_state.PartitionState` so the test
suite can use them as an oracle against the incremental bookkeeping.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .hypergraph import Hypergraph

__all__ = [
    "hyperedge_cut",
    "connectivity_cut",
    "part_weights",
    "load_imbalance",
    "within_balance",
]


def hyperedge_cut(hg: Hypergraph, assignment: Sequence[int]) -> int:
    """Weighted count of hyperedges whose pins span >1 partition.

    This is the paper's cut metric (Tables 1 and 2): "the number of
    hyperedges that span multiple partitions".
    """
    part = np.asarray(assignment)
    cut = 0
    for e in range(hg.num_edges):
        pins = hg.edge_vertices(e)
        p0 = part[pins[0]]
        if (part[pins] != p0).any():
            cut += int(hg.edge_weight[e])
    return cut


def connectivity_cut(hg: Hypergraph, assignment: Sequence[int]) -> int:
    """``sum_e w_e * (lambda_e - 1)``, lambda = #partitions edge spans."""
    part = np.asarray(assignment)
    total = 0
    for e in range(hg.num_edges):
        pins = hg.edge_vertices(e)
        lam = len(set(int(part[v]) for v in pins))
        total += int(hg.edge_weight[e]) * (lam - 1)
    return total


def part_weights(hg: Hypergraph, assignment: Sequence[int], k: int) -> np.ndarray:
    """Total vertex weight per partition as a ``(k,)`` array."""
    part = np.asarray(assignment)
    w = np.zeros(k, dtype=np.int64)
    np.add.at(w, part, hg.vertex_weight)
    return w


def load_imbalance(hg: Hypergraph, assignment: Sequence[int], k: int) -> float:
    """Maximum relative deviation from the ideal per-partition load."""
    w = part_weights(hg, assignment, k)
    total = hg.total_weight
    if total == 0:
        return 0.0
    return float(np.abs(w - total / k).max() / total)


def within_balance(
    hg: Hypergraph, assignment: Sequence[int], k: int, b: float
) -> bool:
    """Check the paper's load-balancing constraint (Formula 1).

    ``load * (1/k - b/100) <= load[i] <= load * (1/k + b/100)`` must
    hold for every partition ``i``, where ``load`` is the total circuit
    weight and ``b`` the balance factor in percent.
    """
    w = part_weights(hg, assignment, k)
    total = hg.total_weight
    lo = total * (1.0 / k - b / 100.0)
    hi = total * (1.0 / k + b / 100.0)
    return bool((w >= lo - 1e-9).all() and (w <= hi + 1e-9).all())
