"""Mutable k-way partition assignment layered over a :class:`Hypergraph`.

The state tracks, incrementally under single-vertex moves:

* ``part[v]`` — the partition of each vertex,
* ``part_weight[p]`` — the total vertex weight per partition,
* ``edge_part_count[e, p]`` — how many pins of hyperedge ``e`` lie in
  partition ``p``,
* ``edge_lambda[e]`` — how many partitions hyperedge ``e`` spans (the
  λ connectivity of the multilevel-partitioning literature), kept as a
  dense array so neither :meth:`move` nor :meth:`move_gain` ever scans
  the ``k`` per-edge counts to rediscover it,
* the weighted **hyperedge cut** (number of hyperedges spanning more
  than one partition, weighted by edge weight — the paper's Table 1/2
  metric), and
* the **connectivity metric** ``sum_e w_e * (lambda_e - 1)`` (SOED-1,
  a secondary diagnostic).

All partitioning algorithms in :mod:`repro.core` and
:mod:`repro.baselines` mutate the circuit's partition exclusively
through :meth:`PartitionState.move`, so the incremental bookkeeping is
the single source of truth; :meth:`recompute` re-derives everything
from scratch (vectorized over the CSR incidence arrays) and is used by
the test suite to cross-check the increments.

Performance notes (``docs/performance.md`` has the full complexity
table):

* scalar :meth:`move` / :meth:`move_gain` are O(degree) thanks to the
  λ array — the per-edge ``(counts > 0).sum()`` scan of the original
  implementation made them O(degree · k);
* :meth:`move_gains` evaluates a whole batch of candidate moves in a
  handful of NumPy operations over the gathered incidence slices — FM
  heap fills, neighbor gain refreshes and pairing estimates all go
  through it;
* :meth:`copy` / :meth:`export_arrays` / :meth:`from_arrays` duplicate
  the derived arrays directly instead of replaying ``recompute`` —
  O(edges · k) ``memcpy`` instead of an O(pins) scatter, and the cheap
  path worker processes use to adopt a round-start snapshot.

The instance counters ``lambda_hits`` / ``gain_batches`` /
``gain_batch_vertices`` / ``boundary_batches`` are deterministic
structural tallies of that machinery; benchmarks surface them as the
``part.core.*`` metrics (:mod:`repro.obs.registry`).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import PartitionError
from .hypergraph import Hypergraph

__all__ = ["PartitionState"]

#: incident-edge count above which the scalar move/gain paths switch
#: from the Python loop to the vectorized kernel — tiny degrees are
#: faster looped (constant NumPy dispatch overhead dominates), big
#: degrees vectorized; both compute identical integers.
_VECTOR_DEGREE = 16

#: plain-``int`` mirrors of the derived arrays, materialized together
#: on first scalar access (:meth:`PartitionState.__getattr__`) and
#: dropped wholesale on bulk rebuilds.  A batch-only refinement pass
#: (``repro.core.batch_refine``) never touches them, so million-vertex
#: states skip the O(n + m·k) ``tolist`` conversions entirely.
_LAZY_MIRRORS = frozenset(
    {
        "_part_list",
        "_lam_list",
        "_counts_list",
        "_counts_flat",
        "_adj",
        "_w_list",
        "_vw_list",
    }
)


class PartitionState:
    """k-way partition of a hypergraph with incremental cut tracking."""

    def __init__(self, hg: Hypergraph, k: int, assignment: Sequence[int] | None = None):
        if k < 1:
            raise PartitionError(f"k must be >= 1, got {k}")
        self.hg = hg
        self.k = k
        if assignment is None:
            self.part = np.zeros(hg.num_vertices, dtype=np.int64)
        else:
            self.part = np.asarray(assignment, dtype=np.int64).copy()
            if len(self.part) != hg.num_vertices:
                raise PartitionError(
                    f"assignment length {len(self.part)} != "
                    f"{hg.num_vertices} vertices"
                )
            if len(self.part) and (self.part.min() < 0 or self.part.max() >= k):
                raise PartitionError("assignment refers to a partition id out of range")
        self._reset_core_stats()
        self.recompute()

    def _reset_core_stats(self) -> None:
        #: incident-edge gain/update evaluations answered from the λ
        #: array instead of an O(k) per-edge scan (``part.core.lambda_hits``)
        self.lambda_hits = 0
        #: vectorized batch gain queries issued (``part.core.gain_batches``)
        self.gain_batches = 0
        #: vertices evaluated through batch gain queries
        #: (``part.core.gain_batch_vertices``)
        self.gain_batch_vertices = 0
        #: vectorized boundary extractions (``part.core.boundary_batches``)
        self.boundary_batches = 0

    # -- full recomputation ------------------------------------------------

    def recompute(self) -> None:
        """Rebuild all derived quantities from ``self.part``.

        Vectorized over the CSR incidence arrays: one ``np.add.at``
        scatter over the pins builds ``edge_part_count``, one reduction
        derives λ.  O(pins + edges·k), no Python-level loop; used after
        bulk reassignment and by tests to validate the incremental path.
        """
        hg = self.hg
        pw = np.zeros(self.k, dtype=np.int64)
        np.add.at(pw, self.part, hg.vertex_weight)
        self._pw_list = pw.tolist()
        counts = np.zeros((hg.num_edges, self.k), dtype=np.int64)
        if hg.num_pins:
            np.add.at(counts, (hg.pin_edges, self.part[hg.pin_vertices]), 1)
        self.edge_part_count = counts
        self.edge_lambda = np.count_nonzero(counts, axis=1).astype(np.int64)
        cut_mask = self.edge_lambda > 1
        self._cut = int(hg.edge_weight[cut_mask].sum())
        self._soed = int(
            (hg.edge_weight * np.maximum(self.edge_lambda - 1, 0)).sum()
        )
        self._invalidate_mirrors()

    def __getattr__(self, name: str):
        # lazy plain-int mirrors: built all together on first scalar
        # access, absent until then (vectorized-only callers never pay)
        if name in _LAZY_MIRRORS:
            self._build_mirrors()
            return self.__dict__[name]
        raise AttributeError(
            f"{type(self).__name__!s} object has no attribute {name!r}"
        )

    def _invalidate_mirrors(self) -> None:
        """Drop the scalar mirrors; the next scalar access rebuilds."""
        d = self.__dict__
        for name in _LAZY_MIRRORS:
            d.pop(name, None)

    def _build_mirrors(self) -> None:
        """Materialize the plain-``int`` mirrors of the derived arrays.

        The scalar move/gain paths read (and dual-write) native Python
        lists — NumPy scalar indexing costs ~10x a list index, which is
        the whole budget at netlist degrees.  The NumPy arrays remain
        authoritative for every vectorized query; once built, the
        mirrors carry the same integers at all times (the batch
        mutators keep them in sync *only while they exist* — see
        :meth:`move_batch` / :meth:`restore`).
        """
        self._part_list: list[int] = self.part.tolist()
        self._lam_list: list[int] = self.edge_lambda.tolist()
        self._counts_list: list[list[int]] = self.edge_part_count.tolist()
        if not self.edge_part_count.flags.c_contiguous:
            self.edge_part_count = np.ascontiguousarray(self.edge_part_count)
        # flat alias of edge_part_count — scalar writes through a 1-D
        # view skip NumPy's tuple-index dispatch
        self._counts_flat: np.ndarray = self.edge_part_count.reshape(-1)
        # pre-bound hypergraph lookup tables (skip a method/property
        # dispatch per scalar gain/move call)
        self._adj: list[list[int]] = self.hg.vertex_edges_lists()
        self._w_list: list[int] = self.hg.edge_weight_list
        self._vw_list: list[int] = self.hg.vertex_weight_list

    # -- queries -------------------------------------------------------------

    @property
    def part_weight(self) -> np.ndarray:
        """Total vertex weight per partition, as an ``int64`` array.

        Backed by a plain-``int`` list so :meth:`move` updates it
        without NumPy scalar read-modify-writes; each property access
        materializes a fresh (tiny, length-``k``) array, so hold no
        reference across moves.
        """
        return np.asarray(self._pw_list, dtype=np.int64)

    @property
    def cut_size(self) -> int:
        """Weighted hyperedge cut (edges spanning >1 partition)."""
        return self._cut

    @property
    def connectivity(self) -> int:
        """``sum_e w_e * (lambda_e - 1)`` where lambda is #parts spanned."""
        return self._soed

    def parts(self) -> list[list[int]]:
        """Vertex ids grouped by partition."""
        out: list[list[int]] = [[] for _ in range(self.k)]
        for v, p in enumerate(self.part):
            out[int(p)].append(v)
        return out

    def part_of(self, v: int) -> int:
        """Partition currently holding vertex ``v``."""
        part_list = self.__dict__.get("_part_list")
        if part_list is not None:
            return part_list[v]
        # don't force the full scalar-mirror build for a point query
        return int(self.part[v])

    def copy(self) -> "PartitionState":
        """Independent deep copy (shares the immutable hypergraph).

        Copies the derived arrays directly — no ``recompute`` replay —
        so snapshotting is a memcpy, cheap enough for per-round
        snapshots in hot loops.  The ``part.core.*`` stat counters
        start at zero on the copy (they tally work done *through* an
        instance).
        """
        return PartitionState.from_arrays(
            self.hg, self.k, self.export_arrays()
        )

    def export_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int, int]:
        """Snapshot of the full derived state as plain arrays.

        Returns ``(part, part_weight, edge_part_count, edge_lambda,
        cut, soed)`` — independent copies, safe to mutate or ship to a
        worker process; :meth:`from_arrays` adopts them on the other
        side without recomputation.
        """
        return (
            self.part.copy(),
            self.part_weight,
            self.edge_part_count.copy(),
            self.edge_lambda.copy(),
            self._cut,
            self._soed,
        )

    @classmethod
    def from_arrays(
        cls,
        hg: Hypergraph,
        k: int,
        arrays: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int, int],
    ) -> "PartitionState":
        """Adopt a snapshot produced by :meth:`export_arrays`.

        The arrays are taken over as-is (no copy — the exporter already
        copied, and pickling across a process boundary copies again);
        reconstructing a worker-side state is array adoption only — the
        scalar mirrors stay unbuilt until a scalar move/gain needs
        them, far below a ``recompute`` replay.
        """
        part, part_weight, edge_part_count, edge_lambda, cut, soed = arrays
        state = object.__new__(cls)
        state.hg = hg
        state.k = k
        state.part = part
        state._pw_list = np.asarray(part_weight).tolist()
        state.edge_part_count = edge_part_count
        state.edge_lambda = edge_lambda
        state._cut = int(cut)
        state._soed = int(soed)
        state._reset_core_stats()
        return state

    def snapshot(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[int], int, int]:
        """Cheap in-process checkpoint of the derived state.

        Unlike :meth:`export_arrays` this is meant for same-object
        :meth:`restore` (FM best-prefix rollback), so it captures the
        part-weight list directly instead of materializing an array.
        Costs three memcpys plus a length-``k`` list copy.
        """
        return (
            self.part.copy(),
            self.edge_part_count.copy(),
            self.edge_lambda.copy(),
            list(self._pw_list),
            self._cut,
            self._soed,
        )

    def restore(
        self,
        snap: tuple[np.ndarray, np.ndarray, np.ndarray, list[int], int, int],
    ) -> None:
        """Rewind to a :meth:`snapshot` taken on this same state.

        Data is copied *into* the existing arrays (``np.copyto``) so
        every outstanding view — notably the flat counts alias used by
        the scalar move kernel — stays valid; the plain-list mirrors
        are rebuilt only if they were materialized.  O(n + m·k)
        memcpy/tolist, independent of how many moves happened since the
        snapshot, which is what makes restore-and-replay cheaper than
        undoing a long FM suffix move-by-move.
        """
        part, counts, lam, pw, cut, soed = snap
        np.copyto(self.part, part)
        np.copyto(self.edge_part_count, counts)
        np.copyto(self.edge_lambda, lam)
        self._pw_list = list(pw)
        self._cut = cut
        self._soed = soed
        if "_part_list" in self.__dict__:
            self._part_list = part.tolist()
            self._counts_list = counts.tolist()
            self._lam_list = lam.tolist()

    def pair_cut(self, a: int, b: int) -> int:
        """Weighted cut counted only between partitions ``a`` and ``b``.

        Used by the cut-based pairing strategy (paper §3.1.1): the pair
        with the maximum mutual cut is refined next.
        """
        mask = (self.edge_part_count[:, a] > 0) & (self.edge_part_count[:, b] > 0)
        return int(self.hg.edge_weight[mask].sum())

    def pair_cut_matrix(self) -> np.ndarray:
        """Symmetric ``(k, k)`` matrix of pairwise cut weights."""
        occupied = self.edge_part_count > 0
        w = self.hg.edge_weight.astype(np.int64)
        m = (occupied.T * w) @ occupied
        np.fill_diagonal(m, 0)
        # entry (a, b) = sum of weights of edges touching both a and b
        return m

    def pair_boundary(self, a: int, b: int) -> np.ndarray:
        """Vertices of partitions ``a``/``b`` on an edge spanning both.

        Vectorized: the λ array masks uncut edges up front, one CSR
        gather collects the candidate pins, one unique pass dedups.
        Returns a sorted ``int64`` array (so deterministic sample caps
        are plain slices).
        """
        self.boundary_batches += 1
        mask = (
            (self.edge_lambda > 1)
            & (self.edge_part_count[:, a] > 0)
            & (self.edge_part_count[:, b] > 0)
        )
        edges = np.nonzero(mask)[0]
        if not len(edges):
            return np.empty(0, dtype=np.int64)
        pins, _ = self.hg.edges_pins(edges)
        owner = self.part[pins]
        return np.unique(pins[(owner == a) | (owner == b)])

    def pair_vertices(self, a: int, b: int) -> np.ndarray:
        """All vertices currently in partition ``a`` or ``b`` (sorted)."""
        return np.nonzero((self.part == a) | (self.part == b))[0]

    def move_gain(self, v: int, to_part: int) -> int:
        """Change in cut size if ``v`` moved to ``to_part`` (gain > 0 is
        an improvement, i.e. the cut would *decrease* by ``gain``)."""
        frm = self._part_list[v]
        if frm == to_part:
            return 0
        edges = self._adj[v]
        self.lambda_hits += len(edges)
        if len(edges) > _VECTOR_DEGREE:
            idx = np.asarray(edges, dtype=np.int64)
            counts = self.edge_part_count
            lam = self.edge_lambda[idx]
            new_lam = (
                lam
                - (counts[idx, frm] == 1)
                + (counts[idx, to_part] == 0)
            )
            w = self.hg.edge_weight[idx]
            return int(w[(lam > 1) & (new_lam == 1)].sum()) - int(
                w[(lam == 1) & (new_lam > 1)].sum()
            )
        gain = 0
        counts_list = self._counts_list
        lam_list = self._lam_list
        w_list = self._w_list
        for e in edges:
            row = counts_list[e]
            spanned = lam_list[e]
            new_spanned = (
                spanned
                - (1 if row[frm] == 1 else 0)
                + (1 if row[to_part] == 0 else 0)
            )
            if spanned > 1 and new_spanned == 1:
                gain += w_list[e]
            elif spanned == 1 and new_spanned > 1:
                gain -= w_list[e]
        return gain

    def move_gains(
        self, vertices: Sequence[int] | np.ndarray, to_parts: Sequence[int] | np.ndarray | int
    ) -> np.ndarray:
        """Batch :meth:`move_gain`: cut deltas for moving ``vertices[i]``
        to ``to_parts[i]`` (or a shared scalar target).

        One CSR gather collects every incident edge of the batch; the
        λ array answers each edge's before/after spanning in a few
        vectorized comparisons, and a scatter-add folds per-edge deltas
        back onto their vertices.  Exact integer arithmetic — a batch
        query returns precisely the scalars the per-vertex path would,
        so callers may mix the two freely without perturbing
        tie-breaking.  Vertices already in their target partition get
        gain 0, mirroring the scalar method.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        to_arr = np.broadcast_to(
            np.asarray(to_parts, dtype=np.int64), vertices.shape
        )
        self.gain_batches += 1
        self.gain_batch_vertices += len(vertices)
        gains = np.zeros(len(vertices), dtype=np.int64)
        if not len(vertices):
            return gains
        if len(vertices) <= _VECTOR_DEGREE:
            # tiny batch (e.g. a neighbour refresh after one FM move):
            # the scalar path beats NumPy dispatch overhead and computes
            # the same exact integers
            for i, (v, t) in enumerate(zip(vertices.tolist(), to_arr.tolist())):
                gains[i] = self.move_gain(v, t)
            return gains
        hg = self.hg
        edges, deg = hg.vertices_edges(vertices)
        if not len(edges):
            return gains
        self.lambda_hits += len(edges)
        owner = np.repeat(np.arange(len(vertices), dtype=np.int64), deg)
        frm = np.repeat(self.part[vertices], deg)
        to = np.repeat(to_arr, deg)
        counts = self.edge_part_count
        lam = self.edge_lambda[edges]
        new_lam = lam - (counts[edges, frm] == 1) + (counts[edges, to] == 0)
        w = hg.edge_weight[edges]
        delta = np.where((lam > 1) & (new_lam == 1), w, 0) - np.where(
            (lam == 1) & (new_lam > 1), w, 0
        )
        np.add.at(gains, owner, delta)
        gains[self.part[vertices] == to_arr] = 0
        return gains

    def move_soed_gains(
        self, vertices: Sequence[int] | np.ndarray, to_parts: Sequence[int] | np.ndarray | int
    ) -> np.ndarray:
        """Batch connectivity (SOED/λ-sum) deltas for the same moves
        :meth:`move_gains` scores by hyperedge cut.

        ``gains[i]`` is the weighted decrease of Σ w·λ if ``vertices[i]``
        moved to its target: an edge loses λ when the vertex is its
        source block's last pin, and gains λ when the target block is
        not yet present.  The batch refiner uses this as the secondary
        objective — a zero-cut-gain move with positive SOED gain peels
        an edge one block closer to uncut, escaping cut plateaus while
        the lexicographic (cut, SOED) potential still strictly
        decreases.  Vertices already in their target get gain 0.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        to_arr = np.broadcast_to(
            np.asarray(to_parts, dtype=np.int64), vertices.shape
        )
        self.gain_batches += 1
        self.gain_batch_vertices += len(vertices)
        gains = np.zeros(len(vertices), dtype=np.int64)
        if not len(vertices):
            return gains
        hg = self.hg
        edges, deg = hg.vertices_edges(vertices)
        if not len(edges):
            return gains
        self.lambda_hits += len(edges)
        owner = np.repeat(np.arange(len(vertices), dtype=np.int64), deg)
        frm = np.repeat(self.part[vertices], deg)
        to = np.repeat(to_arr, deg)
        counts = self.edge_part_count
        w = hg.edge_weight[edges]
        delta = np.where(counts[edges, frm] == 1, w, 0) - np.where(
            counts[edges, to] == 0, w, 0
        )
        np.add.at(gains, owner, delta)
        gains[self.part[vertices] == to_arr] = 0
        return gains

    def move_gains_matrix(
        self,
        vertices: Sequence[int] | np.ndarray,
        to_parts: Sequence[int] | np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fused all-destinations gather: ``(T, V)`` cut-gain and SOED-
        gain matrices for moving each of ``vertices`` into each of
        ``to_parts``.

        Entry ``[t, i]`` equals :meth:`move_gains` (resp.
        :meth:`move_soed_gains`) of ``vertices[i]`` toward
        ``to_parts[t]`` — exact integers, 0 when the vertex already
        sits in that block — but the incidence CSR gather, λ lookup
        and source-block analysis run **once** for the whole matrix
        instead of once per destination per objective.  This is the
        batch refiner's whole-boundary scoring kernel; collapsing its
        ``2·T`` stacked vector queries into one call is what keeps the
        per-round gather affordable at a million vertices.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        targets = np.asarray(to_parts, dtype=np.int64)
        tcount = len(targets)
        self.gain_batches += 1
        self.gain_batch_vertices += len(vertices)
        gains = np.zeros((tcount, len(vertices)), dtype=np.int64)
        soeds = np.zeros((tcount, len(vertices)), dtype=np.int64)
        if not len(vertices) or not tcount:
            return gains, soeds
        hg = self.hg
        edges, deg = hg.vertices_edges(vertices)
        if len(edges):
            self.lambda_hits += len(edges)
            counts = self.edge_part_count
            frm = np.repeat(self.part[vertices], deg)
            last_in_from = (counts[edges, frm] == 1)[:, None]       # (E, 1)
            to_empty = counts[np.ix_(edges, targets)] == 0          # (E, T)
            lam = self.edge_lambda[edges][:, None]
            w = hg.edge_weight[edges][:, None]
            new_lam = lam - last_in_from + to_empty
            cut_delta = np.where((lam > 1) & (new_lam == 1), w, 0) \
                - np.where((lam == 1) & (new_lam > 1), w, 0)
            soed_delta = np.where(last_in_from, w, 0) \
                - np.where(to_empty, w, 0)
            nz = np.flatnonzero(deg)
            starts = (np.cumsum(deg) - deg)[nz]
            gains[:, nz] = np.add.reduceat(cut_delta, starts, axis=0).T
            soeds[:, nz] = np.add.reduceat(soed_delta, starts, axis=0).T
        own = targets[:, None] == self.part[vertices][None, :]
        gains[own] = 0
        soeds[own] = 0
        return gains, soeds

    # -- mutation -------------------------------------------------------------

    def move(self, v: int, to_part: int) -> int:
        """Move vertex ``v`` to ``to_part``; returns the realized gain.

        Updates part weights, per-edge partition counts, the λ array,
        cut size and connectivity incrementally in O(degree(v)) — the
        λ cache removes the per-edge O(k) occupied-partition scan.
        """
        frm = self._part_list[v]
        if to_part == frm:
            return 0
        if not (0 <= to_part < self.k):
            raise PartitionError(f"target partition {to_part} out of range [0,{self.k})")
        edges = self._adj[v]
        self.lambda_hits += len(edges)
        if len(edges) > _VECTOR_DEGREE:
            gain, soed_delta = self._move_update_vector(edges, frm, to_part)
        else:
            gain, soed_delta = self._move_update_scalar(edges, frm, to_part)
        wv = self._vw_list[v]
        pw = self._pw_list
        pw[frm] -= wv
        pw[to_part] += wv
        self.part[v] = to_part
        self._part_list[v] = to_part
        self._cut -= gain
        self._soed += soed_delta
        return gain

    def _move_update_scalar(
        self, edges: list[int], frm: int, to_part: int
    ) -> tuple[int, int]:
        """Per-edge loop move update — fastest at small degrees.

        Reads the plain-list mirrors and dual-writes every change back
        to the NumPy arrays so vectorized queries stay exact.
        """
        gain = 0
        soed_delta = 0
        k = self.k
        flat = self._counts_flat
        lam_arr = self.edge_lambda
        counts_list = self._counts_list
        lam_list = self._lam_list
        w_list = self._w_list
        for e in edges:
            row = counts_list[e]
            spanned = lam_list[e]
            nf = row[frm] - 1
            nt = row[to_part] + 1
            row[frm] = nf
            row[to_part] = nt
            base = e * k
            flat[base + frm] = nf
            flat[base + to_part] = nt
            new_spanned = spanned
            if nf == 0:
                new_spanned -= 1
            if nt == 1:
                new_spanned += 1
            if new_spanned != spanned:
                lam_list[e] = new_spanned
                lam_arr[e] = new_spanned
                w = w_list[e]
                if spanned > 1 and new_spanned == 1:
                    gain += w
                elif spanned == 1 and new_spanned > 1:
                    gain -= w
                soed_delta += w * (new_spanned - spanned)
        return gain, soed_delta

    def _move_update_vector(
        self, edges: list[int], frm: int, to_part: int
    ) -> tuple[int, int]:
        """Vectorized move update — O(degree) NumPy for fat vertices."""
        idx = np.asarray(edges, dtype=np.int64)
        counts = self.edge_part_count
        frm_counts = counts[idx, frm] - 1
        to_counts = counts[idx, to_part] + 1
        lam = self.edge_lambda[idx]
        new_lam = lam - (frm_counts == 0) + (to_counts == 1)
        counts[idx, frm] = frm_counts
        counts[idx, to_part] = to_counts
        self.edge_lambda[idx] = new_lam
        counts_list = self._counts_list
        lam_list = self._lam_list
        for e, nf, nt, nl in zip(
            edges, frm_counts.tolist(), to_counts.tolist(), new_lam.tolist()
        ):
            row = counts_list[e]
            row[frm] = nf
            row[to_part] = nt
            lam_list[e] = nl
        w = self.hg.edge_weight[idx]
        gain = int(w[(lam > 1) & (new_lam == 1)].sum()) - int(
            w[(lam == 1) & (new_lam > 1)].sum()
        )
        soed_delta = int((w * (new_lam - lam)).sum())
        return gain, soed_delta

    def move_batch(
        self,
        vertices: Sequence[int] | np.ndarray,
        to_parts: Sequence[int] | np.ndarray,
    ) -> tuple[int, np.ndarray, np.ndarray]:
        """Apply many moves in one vectorized scatter; the batch
        counterpart of :meth:`move`.

        ``vertices`` must be distinct; ``to_parts[i]`` is the target of
        ``vertices[i]`` (entries already in their target are skipped).
        The per-edge partition counts are updated with two scatter-adds
        over the batch's gathered incidence slices, λ is re-derived only
        on the touched edges, and cut/connectivity/part weights follow
        from the λ transitions — O(batch pins + touched·k) total,
        independent of how many untouched edges the hypergraph has.

        Returns ``(gain, touched_edges, old_lambda)``: the realized cut
        decrease, the sorted ids of every edge incident to a moved
        vertex, and those edges' λ values *before* the batch.  The two
        arrays let callers maintain incremental boundary structures —
        only an edge whose cut status flipped (λ crossing 1) changes
        any vertex's cut-edge degree (:mod:`repro.core.batch_refine`).

        When no two moved vertices share a hyperedge the realized gain
        equals the sum of the individual :meth:`move_gain` predictions
        taken before the batch — each touched edge sees exactly one
        endpoint move, so the per-move cut deltas are additive.  The
        method itself is correct for arbitrary batches (the scatters
        accumulate), only that additivity guarantee needs disjointness.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        to_arr = np.asarray(to_parts, dtype=np.int64)
        if vertices.shape != to_arr.shape:
            raise PartitionError(
                f"move_batch got {len(vertices)} vertices but "
                f"{len(to_arr)} targets"
            )
        if len(to_arr) and (to_arr.min() < 0 or to_arr.max() >= self.k):
            raise PartitionError("move_batch target partition out of range")
        frm = self.part[vertices]
        changed = frm != to_arr
        vertices, to_arr, frm = vertices[changed], to_arr[changed], frm[changed]
        if not len(vertices):
            empty = np.empty(0, dtype=np.int64)
            return 0, empty, empty.copy()
        hg = self.hg
        edges, deg = hg.vertices_edges(vertices)
        counts = self.edge_part_count
        np.subtract.at(counts, (edges, np.repeat(frm, deg)), 1)
        np.add.at(counts, (edges, np.repeat(to_arr, deg)), 1)
        touched = np.unique(edges)
        old_lam = self.edge_lambda[touched].copy()
        new_lam = np.count_nonzero(counts[touched], axis=1).astype(np.int64)
        self.edge_lambda[touched] = new_lam
        w = hg.edge_weight[touched]
        gain = int(w[(old_lam > 1) & (new_lam == 1)].sum()) - int(
            w[(old_lam == 1) & (new_lam > 1)].sum()
        )
        self._cut -= gain
        self._soed += int((w * (new_lam - old_lam)).sum())
        moved_w = hg.vertex_weight[vertices]
        pw = self._pw_list
        for p, wv in zip(frm.tolist(), moved_w.tolist()):
            pw[p] -= wv
        for p, wv in zip(to_arr.tolist(), moved_w.tolist()):
            pw[p] += wv
        self.part[vertices] = to_arr
        if "_part_list" in self.__dict__:
            part_list = self._part_list
            for v, p in zip(vertices.tolist(), to_arr.tolist()):
                part_list[v] = p
            counts_list = self._counts_list
            lam_list = self._lam_list
            for e, row, nl in zip(
                touched.tolist(), counts[touched].tolist(), new_lam.tolist()
            ):
                counts_list[e] = row
                lam_list[e] = nl
        return gain, touched, old_lam

    def bulk_assign(self, vertices: Iterable[int], to_part: int) -> None:
        """Assign many vertices at once, then recompute.

        The assignment is one vectorized scatter and the rebuild one
        vectorized :meth:`recompute` — cheaper than per-move bookkeeping
        when most of the circuit is being re-seeded.
        """
        if not (0 <= to_part < self.k):
            raise PartitionError(f"target partition {to_part} out of range [0,{self.k})")
        idx = np.fromiter((int(v) for v in vertices), dtype=np.int64)
        if len(idx):
            self.part[idx] = to_part
        self.recompute()

    # -- balance ------------------------------------------------------------

    def max_imbalance(self) -> float:
        """Largest relative deviation of any partition from the ideal
        ``total/k`` load, as a fraction of total weight."""
        total = self.hg.total_weight
        if total == 0:
            return 0.0
        ideal = total / self.k
        return float(np.abs(self.part_weight - ideal).max() / total)
