"""Mutable k-way partition assignment layered over a :class:`Hypergraph`.

The state tracks, incrementally under single-vertex moves:

* ``part[v]`` — the partition of each vertex,
* ``part_weight[p]`` — the total vertex weight per partition,
* ``edge_part_count[e, p]`` — how many pins of hyperedge ``e`` lie in
  partition ``p``,
* the weighted **hyperedge cut** (number of hyperedges spanning more
  than one partition, weighted by edge weight — the paper's Table 1/2
  metric), and
* the **connectivity metric** ``sum_e w_e * (lambda_e - 1)`` (SOED-1,
  a secondary diagnostic).

All partitioning algorithms in :mod:`repro.core` and
:mod:`repro.baselines` mutate the circuit's partition exclusively
through :meth:`PartitionState.move`, so the incremental bookkeeping is
the single source of truth; :meth:`recompute` re-derives everything from
scratch and is used by the test suite to cross-check the increments.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import PartitionError
from .hypergraph import Hypergraph

__all__ = ["PartitionState"]


class PartitionState:
    """k-way partition of a hypergraph with incremental cut tracking."""

    def __init__(self, hg: Hypergraph, k: int, assignment: Sequence[int] | None = None):
        if k < 1:
            raise PartitionError(f"k must be >= 1, got {k}")
        self.hg = hg
        self.k = k
        if assignment is None:
            self.part = np.zeros(hg.num_vertices, dtype=np.int64)
        else:
            self.part = np.asarray(assignment, dtype=np.int64).copy()
            if len(self.part) != hg.num_vertices:
                raise PartitionError(
                    f"assignment length {len(self.part)} != "
                    f"{hg.num_vertices} vertices"
                )
            if len(self.part) and (self.part.min() < 0 or self.part.max() >= k):
                raise PartitionError("assignment refers to a partition id out of range")
        self.recompute()

    # -- full recomputation ------------------------------------------------

    def recompute(self) -> None:
        """Rebuild all derived quantities from ``self.part``.

        O(pins); used after bulk reassignment and by tests to validate
        the incremental path.
        """
        hg = self.hg
        self.part_weight = np.zeros(self.k, dtype=np.int64)
        np.add.at(self.part_weight, self.part, hg.vertex_weight)
        self.edge_part_count = np.zeros((hg.num_edges, self.k), dtype=np.int64)
        for e in range(hg.num_edges):
            for v in hg.edge_vertices(e):
                self.edge_part_count[e, self.part[v]] += 1
        spanned = (self.edge_part_count > 0).sum(axis=1)
        cut_mask = spanned > 1
        self._cut = int(hg.edge_weight[cut_mask].sum())
        self._soed = int((hg.edge_weight * np.maximum(spanned - 1, 0)).sum())

    # -- queries -------------------------------------------------------------

    @property
    def cut_size(self) -> int:
        """Weighted hyperedge cut (edges spanning >1 partition)."""
        return self._cut

    @property
    def connectivity(self) -> int:
        """``sum_e w_e * (lambda_e - 1)`` where lambda is #parts spanned."""
        return self._soed

    def parts(self) -> list[list[int]]:
        """Vertex ids grouped by partition."""
        out: list[list[int]] = [[] for _ in range(self.k)]
        for v, p in enumerate(self.part):
            out[int(p)].append(v)
        return out

    def part_of(self, v: int) -> int:
        """Partition currently holding vertex ``v``."""
        return int(self.part[v])

    def copy(self) -> "PartitionState":
        """Independent deep copy (shares the immutable hypergraph)."""
        return PartitionState(self.hg, self.k, self.part)

    def pair_cut(self, a: int, b: int) -> int:
        """Weighted cut counted only between partitions ``a`` and ``b``.

        Used by the cut-based pairing strategy (paper §3.1.1): the pair
        with the maximum mutual cut is refined next.
        """
        mask = (self.edge_part_count[:, a] > 0) & (self.edge_part_count[:, b] > 0)
        return int(self.hg.edge_weight[mask].sum())

    def pair_cut_matrix(self) -> np.ndarray:
        """Symmetric ``(k, k)`` matrix of pairwise cut weights."""
        occupied = self.edge_part_count > 0
        w = self.hg.edge_weight.astype(np.int64)
        m = (occupied.T * w) @ occupied
        np.fill_diagonal(m, 0)
        # entry (a, b) = sum of weights of edges touching both a and b
        return m

    def move_gain(self, v: int, to_part: int) -> int:
        """Change in cut size if ``v`` moved to ``to_part`` (gain > 0 is
        an improvement, i.e. the cut would *decrease* by ``gain``)."""
        frm = int(self.part[v])
        if frm == to_part:
            return 0
        gain = 0
        hg = self.hg
        for e in hg.vertex_edges(v):
            counts = self.edge_part_count[e]
            w = int(hg.edge_weight[e])
            spanned = int((counts > 0).sum())
            # after the move: v leaves frm, joins to_part
            leaves_empty = counts[frm] == 1
            enters_new = counts[to_part] == 0
            new_spanned = spanned - (1 if leaves_empty else 0) + (1 if enters_new else 0)
            was_cut = spanned > 1
            now_cut = new_spanned > 1
            if was_cut and not now_cut:
                gain += w
            elif now_cut and not was_cut:
                gain -= w
        return gain

    # -- mutation -------------------------------------------------------------

    def move(self, v: int, to_part: int) -> int:
        """Move vertex ``v`` to ``to_part``; returns the realized gain.

        Updates part weights, per-edge partition counts, cut size and
        connectivity incrementally in O(degree(v) * k).
        """
        frm = int(self.part[v])
        if to_part == frm:
            return 0
        if not (0 <= to_part < self.k):
            raise PartitionError(f"target partition {to_part} out of range [0,{self.k})")
        hg = self.hg
        gain = 0
        soed_delta = 0
        for e in hg.vertex_edges(v):
            counts = self.edge_part_count[e]
            w = int(hg.edge_weight[e])
            spanned = int((counts > 0).sum())
            counts[frm] -= 1
            counts[to_part] += 1
            new_spanned = spanned
            if counts[frm] == 0:
                new_spanned -= 1
            if counts[to_part] == 1:
                new_spanned += 1
            if spanned > 1 and new_spanned == 1:
                gain += w
            elif spanned == 1 and new_spanned > 1:
                gain -= w
            soed_delta += w * (new_spanned - spanned)
        wv = int(hg.vertex_weight[v])
        self.part_weight[frm] -= wv
        self.part_weight[to_part] += wv
        self.part[v] = to_part
        self._cut -= gain
        self._soed += soed_delta
        return gain

    def bulk_assign(self, vertices: Iterable[int], to_part: int) -> None:
        """Assign many vertices then recompute (cheaper than per-move
        bookkeeping when most of the circuit is being re-seeded)."""
        for v in vertices:
            self.part[v] = to_part
        self.recompute()

    # -- balance ------------------------------------------------------------

    def max_imbalance(self) -> float:
        """Largest relative deviation of any partition from the ideal
        ``total/k`` load, as a fraction of total weight."""
        total = self.hg.total_weight
        if total == 0:
            return 0.0
        ideal = total / self.k
        return float(np.abs(self.part_weight - ideal).max() / total)
