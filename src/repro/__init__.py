"""repro — design-driven multiway partitioning for parallel gate-level
Verilog simulation.

A full reproduction of *"A Multiway Partitioning Algorithm for Parallel
Gate Level Verilog Simulation"* (Lijun Li and Carl Tropper, ICPP 2008),
including every substrate the paper depends on:

* :mod:`repro.verilog` — a structural gate-level Verilog front end
  (lexer, parser, elaborator, writers).
* :mod:`repro.hypergraph` — the circuit-as-hypergraph model with
  incremental partition state and hMetis file interchange.
* :mod:`repro.core` — the paper's contribution: cone-seeded, pairwise
  FM-refined, hierarchy-aware (super-gate) multiway partitioning with
  load-balance flattening and pre-simulation-driven (k, b) selection.
* :mod:`repro.baselines` — a from-scratch multilevel (hMetis-style)
  partitioner and other comparators, run on the flattened netlist.
* :mod:`repro.sim` — sequential reference simulator and a Clustered
  Time Warp kernel on a deterministic virtual cluster (the DVS/OOCTW
  substitute).
* :mod:`repro.circuits` — workload generators, including the synthetic
  hierarchical Viterbi decoder standing in for the paper's RPI netlist.
* :mod:`repro.obs` — the observability layer: phase-timed metric
  recorders, a bounded event-trace buffer, and schema-versioned
  metrics JSON shared by the CLI and the benchmark harness.
* :mod:`repro.bench` — experiment harness regenerating every table and
  figure in the paper's evaluation section.

Quickstart::

    from repro import compile_verilog, design_driven_partition
    from repro.circuits import viterbi_verilog

    netlist = compile_verilog(viterbi_verilog())
    result = design_driven_partition(netlist, k=4, b=7.5, seed=0)
    print(result.cut_size, result.part_weights.tolist(), result.balanced)
"""

from .errors import (
    ReproError,
    VerilogError,
    LexError,
    ParseError,
    ElaborationError,
    NetlistError,
    HypergraphError,
    PartitionError,
    SimulationError,
    ConfigError,
)
from .verilog import compile_verilog, parse_source, elaborate, Netlist

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "VerilogError",
    "LexError",
    "ParseError",
    "ElaborationError",
    "NetlistError",
    "HypergraphError",
    "PartitionError",
    "SimulationError",
    "ConfigError",
    "compile_verilog",
    "parse_source",
    "elaborate",
    "Netlist",
    "__version__",
]


def __getattr__(name: str):
    # Lazy exports that would otherwise create import cycles or slow
    # down `import repro` for users who only need the front end.
    if name == "design_driven_partition":
        from .core import design_driven_partition

        return design_driven_partition
    if name == "multilevel_partition":
        from .baselines import multilevel_partition

        return multilevel_partition
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
