"""DVS-style simulation façade.

The paper's DVS stack (Figure 4) is: vvp parser → partitioner →
distributed simulation engine on OOCTW over MPI.  This module is the
top of that stack for the reproduction: hand it an elaborated netlist,
a clustering (the partition's visible nodes), a machine assignment and
a stimulus, and it runs the sequential baseline and the Time Warp
virtual cluster, returning the paper's measurements — simulation time,
speedup, messages, rollbacks.

The sequential baseline wall time uses the *same* cost model as the
parallel run (``gate_evals * event_cost``), exactly as the paper's
"simulation time for 1 machine ... excluding the time for
partitioning".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..obs.recorder import NULL_RECORDER, Recorder
from ..obs.trace import TraceBuffer
from ..verilog.netlist import Netlist
from .cluster import ClusterSpec, RunStats, TimeWarpConfig
from .compiled import CompiledCircuit, compile_circuit
from .events import InputEvent
from .sequential import SequentialSimulator, SeqStats
from .timewarp import TimeWarpEngine

__all__ = ["SimulationReport", "run_partitioned", "run_sequential_baseline"]


@dataclass
class SimulationReport:
    """Everything one partitioned run measures.

    ``speedup`` is modeled-sequential-wall over modeled-parallel-wall;
    the remaining fields mirror the paper's Tables 3/5 and Figures 6/7
    columns.  ``run_stats`` keeps the full kernel breakdown (aggregate,
    per-machine and per-LP counters); :meth:`to_counters` flattens the
    report to the registered metric names for a
    :func:`repro.obs.metrics.metrics_document`.
    """

    num_machines: int
    sequential_wall_time: float
    parallel_wall_time: float
    speedup: float
    messages: int
    anti_messages: int
    rollbacks: int
    rolled_back_events: int
    committed_events: int
    processed_events: int
    peak_checkpoint_bytes: int
    seq_stats: SeqStats
    run_stats: RunStats
    verified: bool

    def to_counters(self) -> dict[str, int | float]:
        """Deterministic flat metric view (``tw.*`` + ``seq.*`` names
        from :mod:`repro.obs.registry`)."""
        out = self.run_stats.to_counters()
        out["seq.gate_evals"] = self.seq_stats.gate_evals
        return out


def run_sequential_baseline(
    circuit: CompiledCircuit,
    events: Sequence[InputEvent],
    spec: ClusterSpec,
    record_activity: bool = False,
    recorder: Recorder = NULL_RECORDER,
) -> tuple[SequentialSimulator, float]:
    """Run the reference simulator; returns it and its modeled wall time.

    ``recorder`` brackets the run in a ``seq.run`` phase/span — the
    presim searches pass their driver recorder here so the one-time
    baseline shows up alongside the per-point worker spans.
    """
    sim = SequentialSimulator(circuit, record_activity=record_activity)
    sim.add_inputs(events)
    with recorder.phase("seq.run"):
        stats = sim.run()
    return sim, stats.gate_evals * spec.event_cost


def run_partitioned(
    netlist_or_circuit: Netlist | CompiledCircuit,
    clusters: Sequence[Sequence[int]],
    lp_machine: Sequence[int],
    events: Sequence[InputEvent],
    spec: ClusterSpec,
    config: TimeWarpConfig = TimeWarpConfig(),
    verify: bool = True,
    sequential: SequentialSimulator | None = None,
    recorder: Recorder = NULL_RECORDER,
    trace: TraceBuffer | None = None,
    progress=None,
) -> SimulationReport:
    """Simulate a partitioned circuit on the virtual cluster.

    Parameters
    ----------
    netlist_or_circuit:
        The design (compiled on demand).
    clusters:
        Gate-id groups, one per LP (the partition's visible nodes).
    lp_machine:
        Machine index per cluster.
    events:
        Input stimulus (see :func:`repro.circuits.random_vectors`).
    verify:
        Cross-check final committed values against the sequential
        oracle (cheap — the baseline is needed for speedup anyway).
    sequential:
        A pre-run sequential simulator over the *same events*, to avoid
        re-running the baseline across a (k, b) sweep.
    recorder:
        Observability sink (:mod:`repro.obs`); receives the kernel's
        ``tw.*``/``seq.*`` counters and the ``tw.run`` phase.  The
        default :data:`~repro.obs.recorder.NULL_RECORDER` records
        nothing at zero cost; a recorder never changes results.
    trace:
        Optional bounded :class:`~repro.obs.trace.TraceBuffer`
        capturing per-event kernel history (exec/send/rollback/gvt/
        migrate) for offline JSONL analysis
        (:mod:`repro.obs.analyze`).
    progress:
        Optional :class:`~repro.obs.progress.ProgressHeartbeat` printing
        a throttled live status line per GVT round (GVT, events/sec,
        rollback rate).  ``None`` (default) keeps runs silent; a
        heartbeat only reads counters, so results are unchanged.

    Returns a :class:`SimulationReport`; all its quantities are modeled
    and deterministic for fixed inputs.
    """
    if isinstance(netlist_or_circuit, CompiledCircuit):
        circuit = netlist_or_circuit
    else:
        circuit = compile_circuit(netlist_or_circuit)
    if sequential is None:
        sequential, seq_wall = run_sequential_baseline(circuit, events, spec)
    else:
        seq_wall = sequential.stats.gate_evals * spec.event_cost
    engine = TimeWarpEngine(circuit, clusters, lp_machine, spec, config,
                            trace=trace, progress=progress)
    with recorder.phase("tw.load"):
        engine.load_inputs(events)
    with recorder.phase("tw.run"):
        stats = engine.run()
    stats.sequential_wall_time = seq_wall
    stats.speedup = seq_wall / stats.wall_time if stats.wall_time > 0 else 0.0
    verified = False
    if verify:
        with recorder.phase("tw.verify"):
            engine.verify_against_sequential(sequential)
        verified = True
    if recorder.enabled:
        for name, value in stats.to_counters().items():
            recorder.incr(name, value)
        recorder.incr("seq.gate_evals", sequential.stats.gate_evals)
        if trace is not None:
            # deterministic (eviction depends only on modeled event
            # volume vs capacity); 0 certifies the trace is complete
            recorder.incr("obs.trace.dropped", trace.dropped)
    return SimulationReport(
        num_machines=spec.num_machines,
        sequential_wall_time=seq_wall,
        parallel_wall_time=stats.wall_time,
        speedup=stats.speedup,
        messages=stats.messages,
        anti_messages=stats.anti_messages,
        rollbacks=stats.rollbacks,
        rolled_back_events=stats.rolled_back_events,
        committed_events=stats.committed_events,
        processed_events=stats.processed_events,
        peak_checkpoint_bytes=stats.peak_checkpoint_bytes,
        seq_stats=sequential.stats,
        run_stats=stats,
        verified=verified,
    )
