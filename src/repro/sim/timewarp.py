"""Time Warp engine on a deterministic virtual cluster.

The engine plays the role of DVS's distributed simulation engine plus
the OOCTW kernel plus MPICH (paper Figure 4), but executes the whole
parallel run *deterministically in one process*: machine wall clocks
are modeled floats advanced by the :class:`~repro.sim.cluster.ClusterSpec`
cost model, and inter-machine messages become visible at the receiver
``msg_latency`` after they were sent.  Optimism, stragglers, rollbacks,
anti-messages, GVT and fossil collection all happen exactly as they
would on real hardware; only the clock is modeled.

Driver loop: repeatedly pick the machine whose next action (processing
a ready event batch, or waking up for a message arrival) happens
earliest in modeled wall time, deliver its due messages (possibly
triggering rollbacks), then let it execute the lowest-virtual-time LP
it hosts — the standard Time Warp scheduling discipline.

Determinism: ties are broken by machine id, LP id, and message serials;
two runs with the same inputs produce identical statistics.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from ..errors import SimulationError
from ..obs.trace import TraceBuffer
from .cluster import ClusterSpec, LPStats, MachineStats, RunStats, TimeWarpConfig
from .compiled import CompiledCircuit
from .events import InputEvent, Message
from .lp import ClusterLP
from .sequential import SequentialSimulator

__all__ = ["TimeWarpEngine"]

#: average hosted LPs per machine above which the scheduler keeps lazy
#: (next_vt, lid) ready-heaps instead of scanning every hosted LP per
#: decision.  Both schedulers select the identical (vt, lid) minimum —
#: the scan wins on small fleets (no heap churn), the heaps win once a
#: linear pass per pick costs more than validating a few stale entries.
SCAN_SCHED_MAX_LPS = 48

#: sentinel marking a machine's cached next-action time as stale
_STALE = object()


class _Machine:
    __slots__ = (
        "mid", "wall", "lp_ids", "ready", "arrivals", "stats", "action_cache"
    )

    def __init__(self, mid: int) -> None:
        self.mid = mid
        self.wall = 0.0
        self.lp_ids: list[int] = []
        #: lazy heap of (next_vt, lid); used when the machine hosts
        #: many LPs (see SCAN_SCHED_MAX_LPS) and by heap-only engine
        #: variants (repro.bench.sim_speed)
        self.ready: list[tuple[int, int]] = []
        #: heap of (arrival_wall, serial, Message)
        self.arrivals: list[tuple[float, int, Message]] = []
        self.stats = MachineStats()
        #: memoized _next_action_time result; every event that can
        #: change it (own execution, arrival push, GVT round) stamps
        #: the sentinel so only touched machines are re-derived
        self.action_cache: object = _STALE


class TimeWarpEngine:
    """Distributed Verilog simulation of one partitioned circuit.

    Parameters
    ----------
    circuit:
        Compiled circuit (shared with the sequential baseline).
    clusters:
        Gate-id list per LP — the partition's *visible nodes*: each
        inner sequence becomes one cluster LP (paper §4.3).  Every gate
        must appear in exactly one cluster.
    lp_machine:
        Machine index per LP (the partition assignment).
    spec:
        Virtual cluster hardware model.
    config:
        Kernel tuning (checkpoint/GVT intervals, cancellation policy).
    trace:
        Optional :class:`~repro.obs.trace.TraceBuffer`; when given, the
        engine emits one event per batch execution, message routing,
        rollback, GVT round, migration and throttle transition — the
        debugging trail for rollback cascades (``docs/observability.md``
        walks through one).  ``None`` (default) disables tracing at
        zero cost; traced quantities are all modeled, so a trace never
        perturbs results and identical runs dump identical JSONL.
    progress:
        Optional :class:`~repro.obs.progress.ProgressHeartbeat` (or any
        object with a compatible ``update`` method).  Called once per
        GVT round with the live GVT estimate, processed-event count,
        rollback count and modeled wall clock; the heartbeat throttles
        and prints on its own.  ``None`` (default) keeps long runs
        silent at zero cost; a heartbeat only reads, so attaching one
        never changes simulation results.
    """

    #: LP implementation instantiated per cluster; benchmark variants
    #: (repro.bench.sim_speed) substitute the pre-optimization LP here
    lp_class = ClusterLP

    def __init__(
        self,
        circuit: CompiledCircuit,
        clusters: Sequence[Sequence[int]],
        lp_machine: Sequence[int],
        spec: ClusterSpec,
        config: TimeWarpConfig = TimeWarpConfig(),
        trace: TraceBuffer | None = None,
        progress=None,
    ) -> None:
        if len(clusters) != len(lp_machine):
            raise SimulationError(
                f"{len(clusters)} clusters but {len(lp_machine)} machine assignments"
            )
        self.circuit = circuit
        self.spec = spec
        self.config = config
        self.lp_machine = [int(m) for m in lp_machine]
        for m in self.lp_machine:
            if not (0 <= m < spec.num_machines):
                raise SimulationError(f"machine id {m} out of range")

        seen: set[int] = set()
        for cl in clusters:
            for gid in cl:
                if gid in seen:
                    raise SimulationError(f"gate {gid} appears in two clusters")
                seen.add(gid)
        if len(seen) != circuit.num_gates:
            raise SimulationError(
                f"clusters cover {len(seen)} of {circuit.num_gates} gates"
            )

        self.lps = [
            self.lp_class(
                lid,
                circuit,
                gate_ids,
                checkpoint_interval=config.checkpoint_interval,
                lazy=config.lazy_cancellation,
                record_changes=config.record_changes,
            )
            for lid, gate_ids in enumerate(clusters)
        ]
        self._wire_destinations()
        self.machines = [_Machine(m) for m in range(spec.num_machines)]
        for lid, m in enumerate(self.lp_machine):
            self.machines[m].lp_ids.append(lid)
        self.stats = RunStats(num_machines=spec.num_machines)
        self.stats.lps = [LPStats(lid=lid) for lid in range(len(self.lps))]
        self._trace = trace
        self._progress = progress
        # original partition per LP: lp_machine drifts under migration,
        # so trace events carry both the current host machine and the
        # static partition the LP was assigned to (the quantity the
        # partitioner's predicted cut speaks about)
        self._lp_partition = tuple(self.lp_machine)
        self._arrival_serial = 0
        self._gate_lp = self._gate_to_lp(clusters)
        self._gvt_estimate = -1
        self._stalled_rounds = 0
        self._emergency_throttle = False
        # per-LP activity since the last GVT round (adaptive
        # checkpointing and migration use these)
        self._lp_recent_evals = [0] * len(self.lps)
        self._lp_recent_rollbacks = [0] * len(self.lps)
        self._machine_busy_prev = [0.0] * spec.num_machines
        self._migration_cooldown = 0
        # conservative mode: exact global safe-time tracking
        self._conservative = config.conservative
        # scheduler flavor: linear next_vt scans for small LP fleets,
        # lazy ready-heaps for large ones (identical decisions either
        # way — see SCAN_SCHED_MAX_LPS)
        self._heap_sched = len(self.lps) > SCAN_SCHED_MAX_LPS * spec.num_machines
        #: lazy min-heap of (next_vt, lid) across every LP
        self._global_ready: list[tuple[int, int]] = []
        #: lazy min-heap of in-flight message receive times
        self._inflight_recv: list[int] = []
        self._inflight_removed: dict[int, int] = {}
        if self._conservative:
            for lp in self.lps:
                # rollback-free execution needs no state saving
                lp.checkpoint_interval = 1 << 30

    def _partition_of(self, lp_id: int) -> int:
        """Static partition of an LP; -1 for the environment LP (-1)."""
        return self._lp_partition[lp_id] if lp_id >= 0 else -1

    def _gate_to_lp(self, clusters: Sequence[Sequence[int]]) -> dict[int, int]:
        out: dict[int, int] = {}
        for lid, cl in enumerate(clusters):
            for gid in cl:
                out[gid] = lid
        return out

    def _wire_destinations(self) -> None:
        """Compute, per LP, the external reader LPs of each driven net."""
        circuit = self.circuit
        lp_of_gate: dict[int, int] = {}
        for lp in self.lps:
            for gid in lp.gate_ids:
                lp_of_gate[gid] = lp.lid
        for lp in self.lps:
            for gid in lp.gate_ids:
                out_net = int(circuit.gate_output[gid])
                dests = sorted(
                    {
                        lp_of_gate[s]
                        for s in circuit.net_sinks[out_net]
                        if lp_of_gate[s] != lp.lid
                    }
                )
                if dests:
                    lp.out_dests[out_net] = tuple(dests)

    # -- stimulus -------------------------------------------------------------

    def load_inputs(self, events: Iterable[InputEvent]) -> None:
        """Pre-load the vector stream into the reader LPs' queues.

        The vector source (DVS's testbench side) is modeled as an
        environment LP (id -1) whose messages are available from wall
        time zero — it never causes rollbacks because its events are
        strictly in the future when loaded.
        """
        circuit = self.circuit
        readers: dict[int, list[int]] = {}
        uid = 0
        for ev in events:
            dsts = readers.get(ev.net)
            if dsts is None:
                dsts = sorted(
                    {self._gate_lp[s] for s in circuit.net_sinks[ev.net]}
                )
                readers[ev.net] = dsts
            for dst in dsts:
                msg = Message(
                    recv_time=ev.time,
                    net=ev.net,
                    value=ev.value,
                    src_lp=-1,
                    dst_lp=dst,
                    send_time=ev.time - 1,
                    uid=uid,
                )
                uid += 1
                res = self.lps[dst].insert_positive(msg)
                if res is not None:  # pragma: no cover - inputs precede run
                    raise SimulationError("environment stimulus caused a rollback")
                self.stats.env_messages += 1

    # -- main loop -------------------------------------------------------------

    def run(self) -> RunStats:
        """Execute to completion; returns aggregate statistics."""
        stats = self.stats
        for m in self.machines:
            self._refresh_ready(m)
        self._gvt_round()
        steps = 0
        while True:
            target = self._pick_machine()
            if target is None:
                # Not necessarily done: (a) every LP may be blocked on a
                # stale GVT estimate (the refresh unblocks whoever holds
                # the true minimum), or (b) a quiescent LP may still owe
                # anti-messages for unconfirmed sends it will never
                # re-issue — the GVT round retires those, and their
                # delivery is new work.  Terminate only when a fresh
                # round surfaces neither.
                self._gvt_round()
                target = self._pick_machine()
                if target is None:
                    break
            machine, action_time = target
            if action_time > machine.wall:
                machine.wall = action_time  # idle until the arrival
            self._deliver_due(machine)
            lid = self._pop_ready_lp(machine)
            if lid is not None:
                self._execute_on(machine, lid)
            machine.action_cache = _STALE  # wall and/or LP state moved
            steps += 1
            if steps % self.config.gvt_interval == 0:
                self._gvt_round()
        self._gvt_round()  # final fossil sweep & memory sample
        stats.wall_time = max((m.wall for m in self.machines), default=0.0)
        for m in self.machines:
            m.stats.wall_time = m.wall
            stats.machines.append(m.stats)
        stats.committed_events = stats.processed_events - stats.rolled_back_events
        for lp in self.lps:
            # getattr defaults keep heap-era LP variants (bench.sim_speed)
            # runnable through the same engine loop
            stats.kernel_batches += getattr(lp, "kernel_batches", 0)
            stats.kernel_batch_gates += getattr(lp, "kernel_batch_gates", 0)
            stats.kernel_scalar_gates += getattr(lp, "kernel_scalar_gates", 0)
        return stats

    # -- machine selection ----------------------------------------------------

    def _pick_machine(self) -> tuple[_Machine, float] | None:
        # conservative mode derives eligibility from *global* state, so
        # one machine's progress can change every other machine's
        # answer — the memo is only sound under optimistic execution
        use_cache = not self._conservative
        best: tuple[float, int] | None = None
        for m in self.machines:
            t = m.action_cache if use_cache else _STALE
            if t is _STALE:
                t = self._next_action_time(m)
                m.action_cache = t
            if t is None:
                continue
            cand = (t, m.mid)
            if best is None or cand < best:
                best = cand
        if best is None:
            return None
        return self.machines[best[1]], best[0]

    def _next_action_time(self, m: _Machine) -> float | None:
        has_work = self._has_ready_work(m)
        if has_work:
            # deliveries due before/at the wall happen first anyway
            return m.wall
        if m.arrivals:
            return max(m.wall, m.arrivals[0][0])
        return None

    def _eligible(self, vt: int) -> bool:
        """Whether a batch at ``vt`` is inside the optimism window."""
        if self._conservative:
            return vt <= self._safe_time(vt)
        if self._emergency_throttle:
            return vt <= self._gvt_estimate + 1
        window = self.config.optimism_window
        if window is None:
            return True
        return vt <= self._gvt_estimate + window

    # -- conservative safe time -------------------------------------------

    def _safe_time(self, candidate_vt: int) -> int:
        """Exact global safe execution time.

        A batch at ``vt`` is safe iff no unprocessed event or in-flight
        message anywhere carries an earlier timestamp (equal-time
        queued events at other LPs are fine — lookahead is one tick —
        but an in-flight message at the same time must land first).
        """
        ready_min = self._global_ready_min()
        inflight_min = self._inflight_min()
        bound = candidate_vt
        if ready_min is not None:
            bound = min(bound, ready_min)
        if inflight_min is not None:
            bound = min(bound, inflight_min - 1)
        return bound

    def _global_ready_min(self) -> int | None:
        if self._heap_sched:
            heap = self._global_ready
            while heap:
                vt, lid = heap[0]
                actual = self.lps[lid].next_vt
                if actual is None or actual != vt:
                    heapq.heappop(heap)
                    if actual is not None:
                        heapq.heappush(heap, (actual, lid))
                    continue
                return vt
            return None
        best: int | None = None
        for lp in self.lps:
            vt = lp.next_vt
            if vt is not None and (best is None or vt < best):
                best = vt
        return best

    def _inflight_min(self) -> int | None:
        heap = self._inflight_recv
        removed = self._inflight_removed
        while heap:
            top = heap[0]
            if removed.get(top):
                removed[top] -= 1
                if not removed[top]:
                    del removed[top]
                heapq.heappop(heap)
                continue
            return top
        return None

    def _has_ready_work(self, m: _Machine) -> bool:
        if self._heap_sched:
            ready = m.ready
            while ready:
                vt, lid = ready[0]
                if self.lp_machine[lid] != m.mid:
                    heapq.heappop(ready)  # migrated away: stale entry
                    continue
                actual = self.lps[lid].next_vt
                if actual is None or actual != vt:
                    heapq.heappop(ready)
                    if actual is not None:
                        heapq.heappush(ready, (actual, lid))
                    continue
                return self._eligible(vt)
            return False
        # linear argmin over the machine's LPs' cached next_vt — the
        # (vt, lid) minimum matches what the lazy ready-heap pops,
        # without the churn of validating stale heap entries
        lps = self.lps
        best: int | None = None
        for lid in m.lp_ids:
            vt = lps[lid].next_vt
            if vt is not None and (best is None or vt < best):
                best = vt
        if best is None:
            return False
        return self._eligible(best)

    def _refresh_ready(self, m: _Machine) -> None:
        # scan scheduling derives readiness from the LPs directly; the
        # heap scheduler (re)seeds the machine's ready-heap here
        if not self._heap_sched:
            return None
        conservative = self._conservative
        for lid in m.lp_ids:
            vt = self.lps[lid].next_vt
            if vt is not None:
                heapq.heappush(m.ready, (vt, lid))
                if conservative:
                    heapq.heappush(self._global_ready, (vt, lid))
        return None

    def _pop_ready_lp(self, m: _Machine) -> int | None:
        if self._heap_sched:
            ready = m.ready
            while ready:
                vt, lid = ready[0]
                if self.lp_machine[lid] != m.mid:
                    heapq.heappop(ready)
                    continue
                actual = self.lps[lid].next_vt
                if actual is None:
                    heapq.heappop(ready)
                    continue
                if actual != vt:
                    heapq.heappop(ready)
                    heapq.heappush(ready, (actual, lid))
                    continue
                if not self._eligible(vt):
                    return None  # earliest valid batch beyond the window
                heapq.heappop(ready)
                return lid
            return None
        lps = self.lps
        best_vt: int | None = None
        best_lid = -1
        for lid in m.lp_ids:
            vt = lps[lid].next_vt
            if vt is None:
                continue
            if (
                best_vt is None
                or vt < best_vt
                or (vt == best_vt and lid < best_lid)
            ):
                best_vt = vt
                best_lid = lid
        if best_vt is None:
            return None
        if not self._eligible(best_vt):
            return None  # earliest valid batch is beyond the window
        return best_lid

    # -- delivery & execution ---------------------------------------------------

    def _deliver_due(self, machine: _Machine) -> None:
        while machine.arrivals and machine.arrivals[0][0] <= machine.wall:
            _, _, msg = heapq.heappop(machine.arrivals)
            if self._conservative:
                removed = self._inflight_removed
                removed[msg.recv_time] = removed.get(msg.recv_time, 0) + 1
            lp = self.lps[msg.dst_lp]
            depth = lp.lvt - msg.recv_time  # >= 0 iff msg is a straggler
            if msg.sign > 0:
                rollback = lp.insert_positive(msg)
            else:
                rollback = lp.insert_anti(msg)
            if rollback is not None:
                self._account_rollback(machine, lp, rollback, msg, depth)
            self._mark_ready(lp)

    def _account_rollback(
        self, machine, lp: ClusterLP, rollback, straggler: Message, depth: int
    ) -> None:
        spec = self.spec
        stats = self.stats
        stats.rollbacks += 1
        machine.stats.rollbacks += 1
        stats.rolled_back_events += rollback.undone_events
        lp_stats = stats.lps[lp.lid]
        lp_stats.rollbacks += 1
        lp_stats.undone_events += rollback.undone_events
        if depth > lp_stats.max_straggler_depth:
            lp_stats.max_straggler_depth = depth
        if depth > stats.max_straggler_depth:
            stats.max_straggler_depth = depth
        cost = spec.rollback_overhead + rollback.undone_events * spec.undo_cost
        for anti in rollback.anti_messages:
            cost += self._route(machine, anti)
        machine.wall += cost
        machine.stats.busy_time += cost
        self._lp_recent_rollbacks[lp.lid] += 1
        if self._trace is not None:
            self._trace.emit(
                "rollback",
                machine=machine.mid,
                lp=lp.lid,
                partition=self._lp_partition[lp.lid],
                straggler_vt=straggler.recv_time,
                straggler_src=straggler.src_lp,
                src_partition=self._partition_of(straggler.src_lp),
                straggler_uid=straggler.uid,
                sign=straggler.sign,
                restored_to=rollback.restored_to,
                undone=rollback.undone_events,
                antis=len(rollback.anti_messages),
                depth=depth,
                wall=machine.wall,
            )

    def _execute_on(self, machine: _Machine, lid: int) -> None:
        spec = self.spec
        lp = self.lps[lid]
        nxt = lp.next_pending_vt()
        for anti in lp.flush_unconfirmed(before_vt=nxt):
            machine.wall += self._route(machine, anti)
        result = lp.execute_batch()
        cost = max(result.gate_evals, 1) * spec.event_cost
        for msg in result.sends:
            cost += self._route(machine, msg)
        if lp.next_pending_vt() is None:
            for anti in lp.flush_unconfirmed():
                cost += self._route(machine, anti)
        machine.wall += cost
        machine.stats.busy_time += cost
        machine.stats.batches += 1
        machine.stats.gate_evals += result.gate_evals
        self.stats.processed_events += result.gate_evals
        lp_stats = self.stats.lps[lid]
        lp_stats.batches += 1
        lp_stats.gate_evals += result.gate_evals
        self._lp_recent_evals[lid] += result.gate_evals
        if self._trace is not None:
            self._trace.emit(
                "exec",
                machine=machine.mid,
                lp=lid,
                partition=self._lp_partition[lid],
                vt=result.vt,
                evals=result.gate_evals,
                sends=len(result.sends),
                wall=machine.wall,
            )
        self._mark_ready(lp)

    def _route(self, src_machine: _Machine, msg: Message) -> float:
        """Dispatch one message; returns the CPU cost charged to the sender.

        Every message — including an intra-machine one — goes through
        the destination machine's arrival queue and is applied at the
        next delivery point.  Never mutating LP state mid-execution
        keeps the kernel non-reentrant: a send can't recursively roll
        back the LP whose batch produced it.
        """
        dst_machine = self.machines[self.lp_machine[msg.dst_lp]]
        dst_machine.action_cache = _STALE  # a new arrival is pending
        self._arrival_serial += 1
        if self._conservative:
            heapq.heappush(self._inflight_recv, msg.recv_time)
        if msg.src_lp >= 0:
            # per-LP send accounting is placement-independent: every
            # inter-LP message counts, local or remote
            lp_stats = self.stats.lps[msg.src_lp]
            if msg.sign > 0:
                lp_stats.msgs_sent += 1
            else:
                lp_stats.antis_sent += 1
        local = dst_machine is src_machine
        if self._trace is not None:
            self._trace.emit(
                "send",
                src_machine=src_machine.mid,
                dst_machine=dst_machine.mid,
                src_lp=msg.src_lp,
                dst_lp=msg.dst_lp,
                src_partition=self._partition_of(msg.src_lp),
                dst_partition=self._partition_of(msg.dst_lp),
                net=msg.net,
                recv_time=msg.recv_time,
                sign=msg.sign,
                uid=msg.uid,
                local=local,
                wall=src_machine.wall,
            )
        if local:
            # intra-machine: a queue insert, no network, no CPU charge
            heapq.heappush(
                dst_machine.arrivals, (src_machine.wall, self._arrival_serial, msg)
            )
            return 0.0
        if msg.sign > 0:
            self.stats.messages += 1
        else:
            self.stats.anti_messages += 1
        src_machine.stats.msgs_sent += 1
        arrival = src_machine.wall + self.spec.msg_latency
        heapq.heappush(dst_machine.arrivals, (arrival, self._arrival_serial, msg))
        return self.spec.msg_cpu_overhead

    def _mark_ready(self, lp: ClusterLP) -> None:
        # scan scheduling reads readiness straight off lp.next_vt; the
        # heap scheduler records the LP's (possibly new) next time
        if not self._heap_sched:
            return None
        vt = lp.next_vt
        if vt is not None:
            m = self.machines[self.lp_machine[lp.lid]]
            heapq.heappush(m.ready, (vt, lp.lid))
            if self._conservative:
                heapq.heappush(self._global_ready, (vt, lp.lid))
        return None

    # -- GVT ----------------------------------------------------------------------

    def _gvt_round(self) -> None:
        """Exact GVT from global knowledge, then fossil collection.

        Also retires unconfirmed-send leftovers that can no longer be
        re-issued (their send time precedes the owner's next possible
        batch), transmitting their anti-messages — otherwise a blocked
        or quiescent LP would pin GVT forever.
        """
        for lp in self.lps:
            if lp.min_unconfirmed_recv_time() is None:
                continue
            machine = self.machines[self.lp_machine[lp.lid]]
            for anti in lp.flush_unconfirmed(before_vt=lp.next_pending_vt()):
                machine.wall += self._route(machine, anti)

        gvt: int | None = None

        def consider(t: int | None) -> None:
            nonlocal gvt
            if t is not None and (gvt is None or t < gvt):
                gvt = t

        for lp in self.lps:
            consider(lp.next_pending_vt())
            consider(lp.min_unconfirmed_recv_time())
        for m in self.machines:
            for _, _, msg in m.arrivals:
                consider(msg.recv_time)
        self.stats.gvt_rounds += 1
        if gvt is None:
            gvt = 1 << 62  # everything is committed

        # stall detection: if GVT refuses to advance (aggressive-mode
        # rollback echo), clamp optimism until it moves again
        throttle_before = self._emergency_throttle
        if gvt <= self._gvt_estimate and gvt < (1 << 62):
            self._stalled_rounds += 1
            if self._stalled_rounds >= self.config.stall_threshold:
                self._emergency_throttle = True
        else:
            self._stalled_rounds = 0
            self._emergency_throttle = False
        if self._trace is not None and self._emergency_throttle != throttle_before:
            self._trace.emit(
                "throttle",
                engaged=self._emergency_throttle,
                gvt=min(gvt, 1 << 62),
                stalled_rounds=self._stalled_rounds,
            )
        if gvt > self._gvt_estimate:
            self._gvt_estimate = gvt

        total_bytes = 0
        for lp in self.lps:
            lp.fossil_collect(gvt)
            total_bytes += lp.checkpoint_bytes()
        if total_bytes > self.stats.peak_checkpoint_bytes:
            self.stats.peak_checkpoint_bytes = total_bytes
        if self._trace is not None:
            self._trace.emit(
                "gvt",
                round=self.stats.gvt_rounds,
                gvt=gvt,
                checkpoint_bytes=total_bytes,
            )

        if self._progress is not None:
            self._progress.update(
                gvt=self._gvt_estimate,
                rounds=self.stats.gvt_rounds,
                processed=self.stats.processed_events,
                rollbacks=self.stats.rollbacks,
                wall=max((m.wall for m in self.machines), default=0.0),
            )

        if self.config.adaptive_checkpointing:
            self._adapt_checkpoint_intervals()
        if self.config.migration and self.spec.num_machines > 1:
            self._maybe_migrate()
        if self.config.adaptive_checkpointing or self.config.migration:
            self._lp_recent_evals = [0] * len(self.lps)
            self._lp_recent_rollbacks = [0] * len(self.lps)
            self._machine_busy_prev = [
                m.stats.busy_time for m in self.machines
            ]
        # the round may have flushed sends, migrated LPs, or moved the
        # GVT estimate (which gates the optimism window): every cached
        # next-action time is suspect now
        for m in self.machines:
            m.action_cache = _STALE

    # -- adaptive extensions -------------------------------------------------

    def _adapt_checkpoint_intervals(self) -> None:
        """Classic adaptive state saving: checkpoint often where
        rollbacks happen, rarely where execution runs clean."""
        max_ci = self.config.max_checkpoint_interval
        for lp in self.lps:
            if self._lp_recent_rollbacks[lp.lid] > 0:
                lp.checkpoint_interval = max(1, lp.checkpoint_interval // 2)
            elif self._lp_recent_evals[lp.lid] > 0:
                lp.checkpoint_interval = min(max_ci, lp.checkpoint_interval * 2)

    def _maybe_migrate(self) -> None:
        """Move the hottest LP off the busiest machine when the recent
        busy-time imbalance exceeds the configured threshold — the
        paper's "responsive to changes in processor loads" extension."""
        if self._migration_cooldown > 0:
            self._migration_cooldown -= 1
            return
        recent = [
            m.stats.busy_time - self._machine_busy_prev[m.mid]
            for m in self.machines
        ]
        busiest = max(range(len(recent)), key=lambda i: (recent[i], -i))
        calmest = min(range(len(recent)), key=lambda i: (recent[i], i))
        if busiest == calmest:
            return
        src = self.machines[busiest]
        hosted = [lid for lid in range(len(self.lps))
                  if self.lp_machine[lid] == busiest]
        if len(hosted) < 2:
            return  # never empty a machine
        if recent[busiest] <= recent[calmest] * (1.0 + self.config.migration_threshold):
            return
        lid = max(hosted, key=lambda l: (self._lp_recent_evals[l], -l))
        if self._lp_recent_evals[lid] == 0:
            return
        dst = self.machines[calmest]
        self.lp_machine[lid] = calmest
        src.lp_ids.remove(lid)
        dst.lp_ids.append(lid)
        # forward queued arrivals addressed to the migrated LP
        kept: list[tuple[float, int, Message]] = []
        moved: list[tuple[float, int, Message]] = []
        for entry in src.arrivals:
            (moved if entry[2].dst_lp == lid else kept).append(entry)
        if moved:
            src.arrivals = kept
            heapq.heapify(src.arrivals)
            for arrival, serial, msg in moved:
                heapq.heappush(
                    dst.arrivals,
                    (max(arrival, src.wall) + self.spec.msg_latency, serial, msg),
                )
        # state transfer cost on both ends
        src.wall += self.config.migration_cost
        src.stats.busy_time += self.config.migration_cost
        dst.wall += self.config.migration_cost
        dst.stats.busy_time += self.config.migration_cost
        self._mark_ready(self.lps[lid])
        self.stats.migrations += 1
        self._migration_cooldown = self.config.migration_cooldown
        if self._trace is not None:
            self._trace.emit(
                "migrate",
                lp=lid,
                src_machine=busiest,
                dst_machine=calmest,
                forwarded=len(moved),
            )

    # -- verification -----------------------------------------------------------

    def final_net_values(self) -> dict[int, int]:
        """Committed value per net, read from the driving LP's copy
        (reader LPs' copies for undriven/PI nets)."""
        circuit = self.circuit
        out: dict[int, int] = {}
        for lp in self.lps:
            for gid in lp.gate_ids:
                net = int(circuit.gate_output[gid])
                out[net] = lp.local_value(net)
        for net in circuit.inputs:
            for lp in self.lps:
                if lp.has_net(net):
                    out[net] = lp.local_value(net)
                    break
        return out

    def committed_changes(self) -> dict[tuple[int, int], int]:
        """Merged committed (time, net) -> value history across LPs.

        Requires ``TimeWarpConfig(record_changes=True)``.  A net local
        to several LPs (driver + readers) is recorded by each; their
        copies must agree, which this method also checks.
        """
        if not self.config.record_changes:
            raise SimulationError(
                "committed_changes() needs TimeWarpConfig(record_changes=True)"
            )
        merged: dict[tuple[int, int], int] = {}
        for lp in self.lps:
            for vt, net, value in lp._change_log:
                key = (vt, net)
                seen = merged.get(key)
                if seen is not None and seen != value:
                    raise SimulationError(
                        f"LPs disagree on net {self.circuit.netlist.net_name(net)!r} "
                        f"at t={vt}: {seen} vs {value}"
                    )
                merged[key] = value
        return merged

    def verify_change_stream(self, reference: SequentialSimulator) -> None:
        """Deep oracle: the committed change history must equal the
        sequential simulator's, entry for entry.

        Both sides need change recording enabled.  This subsumes
        :meth:`verify_against_sequential` (final values are the last
        entries of the stream) and additionally pins every intermediate
        committed transition.
        """
        if not reference.record_changes:
            raise SimulationError(
                "the reference simulator was not built with record_changes=True"
            )
        # nets no LP holds (e.g. a primary input nothing reads) exist
        # only in the sequential world; exclude them from the oracle
        observable = set()
        for lp in self.lps:
            observable.update(lp._net_list)
        expected = {
            (t, net): value
            for t, net, value in reference.change_log
            if net in observable
        }
        got = self.committed_changes()
        if got != expected:
            missing = set(expected) - set(got)
            extra = set(got) - set(expected)
            wrong = {
                k for k in set(got) & set(expected) if got[k] != expected[k]
            }
            def fmt(keys):
                sample = sorted(keys)[:4]
                return ", ".join(
                    f"(t={t}, {self.circuit.netlist.net_name(n)})"
                    for t, n in sample
                )
            raise SimulationError(
                "committed change stream diverges from the sequential oracle: "
                f"{len(missing)} missing [{fmt(missing)}], "
                f"{len(extra)} extra [{fmt(extra)}], "
                f"{len(wrong)} wrong values [{fmt(wrong)}]"
            )

    def verify_against_sequential(self, reference: SequentialSimulator) -> None:
        """Raise :class:`SimulationError` on any divergence from the
        sequential oracle (driven net values at end of run)."""
        vals = self.final_net_values()
        for net, v in vals.items():
            ref = int(reference.values[net])
            if ref != v:
                raise SimulationError(
                    f"divergence on net {self.circuit.netlist.net_name(net)!r} "
                    f"(id {net}): timewarp={v} sequential={ref}"
                )
