"""Testbench builder: declarative clock/reset/data stimulus.

Synchronous designs need the same ceremony every time — hold reset
through one clock edge, release it, then toggle the clock for N cycles
while driving data — and hand-writing the event list is error-prone
(the reset must change away from edges, the period must exceed the
logic depth, …).  :class:`Testbench` builds the event stream once,
correctly:

    tb = (Testbench(netlist)
          .clock("clk")                  # period from the critical path
          .reset("rst", cycles=1)
          .drive("din", 5)               # constant bus value
          .randomize(seed=7))            # remaining inputs random per cycle
    events = tb.events(cycles=20)

The result is a plain :class:`InputEvent` list for either simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..verilog.netlist import Netlist
from .events import InputEvent

__all__ = ["Testbench"]


@dataclass
class _Drive:
    nets: list[int]  # LSB first
    value: int | None  # None = randomize


class Testbench:
    """Fluent stimulus builder for a synchronous netlist."""

    __test__ = False  # not a pytest collection target

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self._by_name = self._group_inputs(netlist)
        self._clock: list[int] | None = None
        self._reset: list[int] | None = None
        self._reset_cycles = 0
        self._period: int | None = None
        self._drives: list[_Drive] = []
        self._random_seed: int | None = None

    @staticmethod
    def _group_inputs(netlist: Netlist) -> dict[str, list[int]]:
        """Group bit-level primary inputs back into named buses."""
        groups: dict[str, list[tuple[int, int]]] = {}
        for nid in netlist.inputs:
            name = netlist.net_name(nid)
            if "[" in name and name.endswith("]"):
                base, _, idx = name.rpartition("[")
                groups.setdefault(base, []).append((int(idx[:-1]), nid))
            else:
                groups.setdefault(name, []).append((0, nid))
        return {
            base: [nid for _, nid in sorted(bits)]
            for base, bits in groups.items()
        }

    def _lookup(self, name: str) -> list[int]:
        bits = self._by_name.get(name)
        if bits is None:
            raise ConfigError(
                f"no primary input named {name!r}; available: "
                f"{', '.join(sorted(self._by_name))}"
            )
        return bits

    # -- configuration ----------------------------------------------------

    def clock(self, name: str, period: int | None = None) -> "Testbench":
        """Declare the clock input; period defaults to twice the
        critical path plus margin (registered values settle)."""
        self._clock = self._lookup(name)
        if len(self._clock) != 1:
            raise ConfigError(f"clock {name!r} must be a scalar input")
        if period is not None:
            if period < 4:
                raise ConfigError("clock period must be >= 4")
            self._period = period
        return self

    def reset(self, name: str, cycles: int = 1) -> "Testbench":
        """Declare an active-high synchronous reset held for ``cycles``
        clock edges before data cycles begin."""
        self._reset = self._lookup(name)
        if len(self._reset) != 1:
            raise ConfigError(f"reset {name!r} must be a scalar input")
        if cycles < 1:
            raise ConfigError("reset cycles must be >= 1")
        self._reset_cycles = cycles
        return self

    def drive(self, name: str, value: int) -> "Testbench":
        """Hold a named input bus at a constant value."""
        bits = self._lookup(name)
        if value < 0 or value >= (1 << len(bits)):
            raise ConfigError(
                f"value {value} does not fit the {len(bits)}-bit input {name!r}"
            )
        self._drives.append(_Drive(bits, value))
        return self

    def randomize(self, seed: int = 0) -> "Testbench":
        """Give every otherwise-undriven data input a fresh random value
        each cycle."""
        self._random_seed = seed
        return self

    # -- generation ----------------------------------------------------------

    def events(self, cycles: int) -> list[InputEvent]:
        """Build the stimulus for ``cycles`` post-reset clock cycles."""
        if cycles < 1:
            raise ConfigError("cycles must be >= 1")
        period = self._period
        if period is None:
            from ..circuits.vectors import natural_schedule

            period = natural_schedule(self.netlist).period
        half = period // 2

        claimed: set[int] = set()
        if self._clock:
            claimed.update(self._clock)
        if self._reset:
            claimed.update(self._reset)
        for d in self._drives:
            claimed.update(d.nets)
        unclaimed = [n for n in self.netlist.inputs if n not in claimed]
        rng = np.random.default_rng(self._random_seed or 0)

        events: list[InputEvent] = []

        def drive_all(t: int, randomize: bool) -> None:
            for d in self._drives:
                for i, net in enumerate(d.nets):
                    events.append(InputEvent(t, net, (d.value >> i) & 1))
            if randomize and self._random_seed is not None:
                for net in unclaimed:
                    events.append(InputEvent(t, net, int(rng.integers(2))))
            elif t == 0:
                # undriven inputs default low so nothing simulates as X
                for net in unclaimed:
                    events.append(InputEvent(0, net, 0))

        t = 0
        if self._clock:
            events.append(InputEvent(0, self._clock[0], 0))
        if self._reset:
            events.append(InputEvent(0, self._reset[0], 1))
        drive_all(0, randomize=False)

        if self._clock is None:
            if self._reset is not None:
                raise ConfigError("reset needs a clock to be released against")
            # pure combinational: one random vector per "cycle"
            for c in range(cycles):
                drive_all(c * period, randomize=True)
            return sorted(events, key=lambda e: (e.time, e.net))

        clk = self._clock[0]
        # reset cycles
        for _ in range(self._reset_cycles if self._reset else 0):
            events.append(InputEvent(t + half, clk, 1))
            events.append(InputEvent(t + period - 2, clk, 0))
            t += period
        if self._reset:
            events.append(InputEvent(t + 2, self._reset[0], 0))
        # data cycles
        for _ in range(cycles):
            drive_all(t + 4, randomize=True)
            events.append(InputEvent(t + half, clk, 1))
            events.append(InputEvent(t + period - 2, clk, 0))
            t += period
        return sorted(events, key=lambda e: (e.time, e.net))
