"""Simulation substrates: sequential oracle + Time Warp virtual cluster.

Layers (mirroring DVS, paper Figure 4):

* :mod:`repro.sim.logic` / :mod:`repro.sim.compiled` — 3-valued gate
  evaluation over an array-compiled circuit.
* :mod:`repro.sim.sequential` — the unit-delay event-driven reference
  simulator (correctness oracle and T_seq baseline).
* :mod:`repro.sim.lp` / :mod:`repro.sim.timewarp` — Clustered Time
  Warp kernel (OOCTW stand-in): optimistic execution, periodic state
  saving, rollback with an unconfirmed-send buffer, anti-messages,
  GVT, fossil collection.
* :mod:`repro.sim.cluster` — the virtual cluster cost model (MPICH +
  gigabit Ethernet stand-in).
* :mod:`repro.sim.engine` — one-call partitioned-run façade returning
  the paper's measurements.
"""

from .logic import V0, V1, VX, GATE_CODES, eval_gate
from .compiled import CompiledCircuit, compile_circuit
from .events import InputEvent, Message
from .sequential import SequentialSimulator, SeqStats, simulate_sequential
from .cluster import ClusterSpec, TimeWarpConfig, RunStats, MachineStats
from .lp import ClusterLP
from .timewarp import TimeWarpEngine
from .engine import SimulationReport, run_partitioned, run_sequential_baseline
from .vcd import VcdWriter
from .calibrate import CalibrationResult, calibrated_spec, measure_event_cost
from .testbench import Testbench

__all__ = [
    "V0",
    "V1",
    "VX",
    "GATE_CODES",
    "eval_gate",
    "CompiledCircuit",
    "compile_circuit",
    "InputEvent",
    "Message",
    "SequentialSimulator",
    "SeqStats",
    "simulate_sequential",
    "ClusterSpec",
    "TimeWarpConfig",
    "RunStats",
    "MachineStats",
    "ClusterLP",
    "TimeWarpEngine",
    "SimulationReport",
    "run_partitioned",
    "run_sequential_baseline",
    "VcdWriter",
    "CalibrationResult",
    "calibrated_spec",
    "measure_event_cost",
    "Testbench",
]
