"""Virtual cluster model: machines, network, and cost accounting.

The paper ran on four AMD Athlon machines connected by gigabit
Ethernet under MPICH.  Offline reproduction replaces that testbed with
a *deterministic virtual cluster*: each machine owns a wall-clock
accumulator, every processed event batch advances it by a modeled
compute cost, and every inter-machine message is charged a network
latency before it becomes visible at the receiver.  Speedup is then
``modeled sequential wall time / max machine wall time`` — the same
quantity the paper measures, computed over the same mechanism
(optimistic simulation with rollbacks), minus real-hardware noise.

Calibration: the default costs approximate the paper's testbed ratio —
a compiled gate event costs about a microsecond of 2001-era CPU, while
a small MPI message over gigabit Ethernet costs tens of microseconds of
sender CPU plus ~100 µs end-to-end latency.  What matters for
reproducing the paper's *shape* is the ratio ``msg_cpu_overhead /
event_cost`` (here 20:1): large enough that cut traffic dominates
beyond a few machines (the paper's speedups saturate near 1.9 on 4
nodes), small enough that a well-partitioned k=4 run still wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError

__all__ = ["ClusterSpec", "TimeWarpConfig", "MachineStats", "LPStats", "RunStats"]


@dataclass(frozen=True)
class ClusterSpec:
    """Hardware model of the virtual cluster.

    All times are in modeled seconds.

    Attributes
    ----------
    num_machines:
        Number of compute nodes (the paper's k).
    event_cost:
        Wall time to evaluate one gate event.
    msg_latency:
        End-to-end latency of an inter-machine message (send overhead +
        wire + receive overhead).
    msg_cpu_overhead:
        Sender CPU time consumed per message (charged to the sending
        machine's wall clock; the latency itself overlaps computation).
    rollback_overhead:
        Fixed CPU cost of initiating one rollback (state restore).
    undo_cost:
        CPU cost per rolled-back event (re-execution is charged at
        ``event_cost`` when the events are re-processed).
    """

    num_machines: int
    event_cost: float = 2.0e-6
    msg_latency: float = 120.0e-6
    msg_cpu_overhead: float = 40.0e-6
    rollback_overhead: float = 60.0e-6
    undo_cost: float = 1.0e-6

    def __post_init__(self) -> None:
        if self.num_machines < 1:
            raise ConfigError(f"num_machines must be >= 1, got {self.num_machines}")
        for name in ("event_cost", "msg_latency", "msg_cpu_overhead",
                     "rollback_overhead", "undo_cost"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")


@dataclass(frozen=True)
class TimeWarpConfig:
    """Kernel tuning knobs.

    Attributes
    ----------
    checkpoint_interval:
        State is saved every this many processed timestamp batches per
        LP (periodic state saving; 1 = save every batch).
    gvt_interval:
        Driver steps between GVT computations / fossil collections.
    lazy_cancellation:
        If True (default), on re-execution after a rollback an output
        message identical to one previously sent is *not* re-sent and
        its anti-message is suppressed (lazy cancellation); if False,
        aggressive cancellation is used as in classic Time Warp.
        Aggressive cancellation on a deterministic cluster can sustain
        rollback-echo orbits (identical cancel/re-send cycles); the
        optimism window plus the engine's GVT-stall throttle keep it
        terminating, but lazy is both faster and closer to how DVS
        behaved on real, jittery hardware.
    optimism_window:
        Maximum virtual-time distance (ticks) an LP may run ahead of
        the last computed GVT; ``None`` disables throttling (pure Time
        Warp).  Bounds wasted optimistic work when the whole vector
        stream is pre-loaded.
    stall_threshold:
        Consecutive GVT rounds without progress before the engine
        clamps the window to 1 tick (near-conservative execution)
        until GVT advances again — the termination safeguard.
    adaptive_checkpointing:
        Per-LP checkpoint-interval tuning (classic Time Warp
        optimization): at every GVT round, an LP that rolled back since
        the previous round halves its interval (cheaper rollbacks),
        otherwise it doubles it up to ``max_checkpoint_interval``
        (cheaper forward progress).  ``checkpoint_interval`` is the
        starting value.
    max_checkpoint_interval:
        Upper bound for adaptive checkpointing.
    migration:
        Dynamic LP migration — the paper's future-work item ("make it
        responsive to changes in processor loads").  At every GVT
        round, if the busiest machine's recent busy time exceeds the
        least busy machine's by more than ``migration_threshold``
        (relative), the hottest LP of the busiest machine moves to the
        least busy one, paying ``migration_cost`` of wall time on both.
    migration_threshold:
        Relative busy-time imbalance that triggers a migration.
    migration_cost:
        Modeled seconds charged to source and destination per migration
        (state transfer + rebinding).
    migration_cooldown:
        GVT rounds to wait after a migration before considering the
        next one — damping against load/locality thrash (load-driven
        migration ignores communication affinity, so chasing every
        imbalance sample destroys the static partition's locality).
    conservative:
        Run the engine as an *idealized conservative* simulator: an LP
        may only execute a batch at the exact global safe time (the
        minimum over every unprocessed event and in-flight message),
        so no rollback can ever occur.  Global knowledge stands in for
        null-message/barrier protocols, making this an upper bound on
        any real conservative implementation — the benchmark Time Warp
        has to beat to justify optimism.  Implies no state saving is
        needed; checkpointing is forced to the maximum interval.
    record_changes:
        Record the committed (time, net, value) history in every LP —
        the deep verification oracle
        (:meth:`~repro.sim.timewarp.TimeWarpEngine.verify_change_stream`).
        Memory grows with the run; testing/debugging only.
    """

    checkpoint_interval: int = 8
    gvt_interval: int = 256
    lazy_cancellation: bool = True
    optimism_window: int | None = 128
    stall_threshold: int = 8
    adaptive_checkpointing: bool = False
    max_checkpoint_interval: int = 64
    migration: bool = False
    migration_threshold: float = 0.25
    migration_cost: float = 500.0e-6
    migration_cooldown: int = 4
    conservative: bool = False
    record_changes: bool = False

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ConfigError("checkpoint_interval must be >= 1")
        if self.gvt_interval < 1:
            raise ConfigError("gvt_interval must be >= 1")
        if self.optimism_window is not None and self.optimism_window < 1:
            raise ConfigError("optimism_window must be >= 1 or None")
        if self.stall_threshold < 1:
            raise ConfigError("stall_threshold must be >= 1")
        if self.max_checkpoint_interval < self.checkpoint_interval:
            raise ConfigError(
                "max_checkpoint_interval must be >= checkpoint_interval"
            )
        if not (0.0 < self.migration_threshold):
            raise ConfigError("migration_threshold must be positive")
        if self.migration_cost < 0:
            raise ConfigError("migration_cost must be non-negative")
        if self.migration_cooldown < 0:
            raise ConfigError("migration_cooldown must be non-negative")


@dataclass
class MachineStats:
    """Per-machine counters accumulated during a run.

    ``wall_time``/``busy_time`` are modeled seconds; their difference
    is idle (blocked or starved) time.  All fields are deterministic.
    """

    wall_time: float = 0.0
    busy_time: float = 0.0
    batches: int = 0
    gate_evals: int = 0
    msgs_sent: int = 0
    rollbacks: int = 0

    def to_dict(self) -> dict:
        """Plain-scalar view for the metrics JSON export."""
        return {
            "wall_time": self.wall_time,
            "busy_time": self.busy_time,
            "batches": self.batches,
            "gate_evals": self.gate_evals,
            "msgs_sent": self.msgs_sent,
            "rollbacks": self.rollbacks,
        }


@dataclass
class LPStats:
    """Per-LP counters accumulated during a run.

    One entry per cluster LP, in LP-id order (``RunStats.lps``).  The
    kernel fills these as it executes; they are the per-LP resolution
    behind the aggregate ``tw.*`` metrics — a rollback cascade shows up
    here as one LP with an outsized ``rollbacks``/``undone_events``
    share long before a trace dump is needed.

    Attributes
    ----------
    lid:
        LP id (index into the engine's LP table).
    batches:
        Timestamp batches executed (including later-undone ones).
    gate_evals:
        Gate events processed (including later-undone ones).
    rollbacks:
        Rollback episodes this LP suffered.
    undone_events:
        Gate events this LP rolled back.
    msgs_sent:
        Positive messages this LP emitted (inter-LP, any machine).
    antis_sent:
        Anti-messages this LP emitted.
    max_straggler_depth:
        Deepest straggler in virtual-time ticks: LP local virtual time
        minus the straggler's receive time, maximized over rollbacks.
    """

    lid: int = 0
    batches: int = 0
    gate_evals: int = 0
    rollbacks: int = 0
    undone_events: int = 0
    msgs_sent: int = 0
    antis_sent: int = 0
    max_straggler_depth: int = 0

    def to_dict(self) -> dict:
        """Plain-scalar view for the metrics JSON export."""
        return {
            "lid": self.lid,
            "batches": self.batches,
            "gate_evals": self.gate_evals,
            "rollbacks": self.rollbacks,
            "undone_events": self.undone_events,
            "msgs_sent": self.msgs_sent,
            "antis_sent": self.antis_sent,
            "max_straggler_depth": self.max_straggler_depth,
        }


@dataclass
class RunStats:
    """Aggregate statistics of one Time Warp run.

    ``speedup`` and ``sequential_wall_time`` are filled in by the
    engine when a sequential baseline is supplied or computed.

    All values are deterministic: identical inputs (circuit, clusters,
    placement, spec, config, stimulus) reproduce them bit-for-bit.
    ``machines`` holds one :class:`MachineStats` per machine and
    ``lps`` one :class:`LPStats` per cluster LP; :meth:`to_counters`
    flattens the aggregates into the ``tw.*`` metric names of
    ``docs/observability.md`` and :meth:`to_dict` produces the full
    structured export (aggregates + per-machine + per-LP).
    """

    num_machines: int = 0
    wall_time: float = 0.0
    sequential_wall_time: float = 0.0
    speedup: float = 0.0
    messages: int = 0
    anti_messages: int = 0
    env_messages: int = 0
    rollbacks: int = 0
    rolled_back_events: int = 0
    processed_events: int = 0
    committed_events: int = 0
    gvt_rounds: int = 0
    migrations: int = 0
    peak_checkpoint_bytes: int = 0
    max_straggler_depth: int = 0
    #: affected-gate batches evaluated through the vectorized kernel
    kernel_batches: int = 0
    #: combinational gate evaluations done by the vectorized kernel
    kernel_batch_gates: int = 0
    #: combinational gate evaluations done on the scalar fast path
    kernel_scalar_gates: int = 0
    machines: list[MachineStats] = field(default_factory=list)
    lps: list[LPStats] = field(default_factory=list)

    def efficiency(self) -> float:
        """Parallel efficiency: speedup / machines."""
        if self.num_machines == 0:
            return 0.0
        return self.speedup / self.num_machines

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"k={self.num_machines} wall={self.wall_time:.4f}s "
            f"seq={self.sequential_wall_time:.4f}s speedup={self.speedup:.2f} "
            f"msgs={self.messages} rollbacks={self.rollbacks} "
            f"(undone {self.rolled_back_events} ev)"
        )

    def idle_fraction(self) -> float:
        """Mean fraction of wall time machines spent idle."""
        if not self.machines or self.wall_time <= 0:
            return 0.0
        fracs = [
            1.0 - m.busy_time / self.wall_time for m in self.machines
        ]
        return float(np.mean(fracs))

    def to_counters(self) -> dict[str, int | float]:
        """Aggregates flattened to the registered ``tw.*`` metric names
        (see :mod:`repro.obs.registry`) — the shape
        :func:`repro.obs.metrics.metrics_document` consumes."""
        return {
            "tw.messages_sent": self.messages,
            "tw.anti_messages_sent": self.anti_messages,
            "tw.env_messages": self.env_messages,
            "tw.processed_events": self.processed_events,
            "tw.committed_events": self.committed_events,
            "tw.rollbacks": self.rollbacks,
            "tw.rolled_back_events": self.rolled_back_events,
            "tw.straggler_depth.max": self.max_straggler_depth,
            "tw.gvt_rounds": self.gvt_rounds,
            "tw.migrations": self.migrations,
            "tw.peak_checkpoint_bytes": self.peak_checkpoint_bytes,
            "tw.wall_time": self.wall_time,
            "tw.speedup": self.speedup,
            "sim.kernel.batches": self.kernel_batches,
            "sim.kernel.batch_gates": self.kernel_batch_gates,
            "sim.kernel.scalar_gates": self.kernel_scalar_gates,
            "seq.wall_time": self.sequential_wall_time,
        }

    def to_dict(self) -> dict:
        """Full structured export: aggregate counters plus per-machine
        and per-LP breakdowns.  Deterministic (no wall-clock fields)."""
        return {
            "num_machines": self.num_machines,
            "counters": self.to_counters(),
            "machines": [m.to_dict() for m in self.machines],
            "lps": [lp.to_dict() for lp in self.lps],
        }
