"""Cost-model calibration against the host machine.

The virtual cluster's wall times are modeled; to relate them to real
seconds for a *specific* simulator build and host, measure the host's
actual per-event cost and scale the :class:`ClusterSpec`.  The paper's
pre-simulation workflow maps directly: run a short calibration, derive
``event_cost``, and the modeled sequential times then predict real
sequential runtimes of this Python simulator (network parameters stay
modeled — there is no real cluster here).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Sequence

from ..errors import ConfigError
from .cluster import ClusterSpec
from .compiled import CompiledCircuit
from .events import InputEvent
from .sequential import SequentialSimulator

__all__ = ["CalibrationResult", "measure_event_cost", "calibrated_spec"]


@dataclass(frozen=True)
class CalibrationResult:
    """Measured host performance for the sequential simulator."""

    events: int
    elapsed: float
    event_cost: float  # seconds per gate event on this host

    def events_per_second(self) -> float:
        return 1.0 / self.event_cost if self.event_cost > 0 else 0.0


def measure_event_cost(
    circuit: CompiledCircuit,
    events: Sequence[InputEvent],
    repeats: int = 3,
) -> CalibrationResult:
    """Time the sequential simulator on a stimulus; keep the best run.

    Best-of-N damps interpreter warm-up and scheduler noise (the same
    discipline as timeit).
    """
    if repeats < 1:
        raise ConfigError("repeats must be >= 1")
    best = float("inf")
    total_events = 0
    for _ in range(repeats):
        sim = SequentialSimulator(circuit)
        sim.add_inputs(events)
        start = time.perf_counter()
        stats = sim.run()
        elapsed = time.perf_counter() - start
        total_events = stats.gate_evals
        if elapsed < best:
            best = elapsed
    if total_events == 0:
        raise ConfigError("calibration stimulus produced no gate events")
    return CalibrationResult(
        events=total_events,
        elapsed=best,
        event_cost=best / total_events,
    )


def calibrated_spec(
    base: ClusterSpec,
    calibration: CalibrationResult,
    keep_ratios: bool = True,
) -> ClusterSpec:
    """A spec whose ``event_cost`` matches the measured host.

    With ``keep_ratios`` (default) every network/rollback parameter is
    scaled by the same factor, preserving the communication-to-compute
    ratio the reproduction's shape depends on; otherwise only
    ``event_cost`` changes.
    """
    if base.event_cost <= 0:
        raise ConfigError("base spec has no event cost to scale")
    factor = calibration.event_cost / base.event_cost
    if not keep_ratios:
        return replace(base, event_cost=calibration.event_cost)
    return replace(
        base,
        event_cost=calibration.event_cost,
        msg_latency=base.msg_latency * factor,
        msg_cpu_overhead=base.msg_cpu_overhead * factor,
        rollback_overhead=base.rollback_overhead * factor,
        undo_cost=base.undo_cost * factor,
    )
