"""Sequential event-driven gate-level simulator.

This is the reference implementation of the paper's simulation model:
**unit gate delay, zero wire delay**, three-valued signals.  It serves
three roles:

1. correctness oracle for the Time Warp kernel (committed results must
   match it exactly);
2. the sequential-time baseline (``T_seq``) against which parallel
   speedups are measured (paper §4.2/§4.3); and
3. the activity profiler whose per-gate event counts ground the cost
   model of the virtual cluster.

Semantics:

* Combinational gates re-evaluate one unit after any input change; a
  scheduled output that equals the net's value at apply time is
  swallowed (inertial glitch suppression at identical values).
* Flip-flops sample their ``d`` (and ``rst``/``en``) pins with the
  values the nets held *just before* the clock edge, which is the
  standard zero-hold-time idealization.  An edge whose before/after
  values involve X produces an X output (conservative unknown edge).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from ..errors import SimulationError
from .compiled import CompiledCircuit
from .events import InputEvent
from .logic import (
    BATCH_THRESHOLD,
    GATE_CODES,
    VX,
    eval_gate_coded,
    eval_gates_batch,
)

__all__ = ["SequentialSimulator", "SeqStats", "simulate_sequential"]

_DFF = GATE_CODES["dff"]
_DFFR = GATE_CODES["dffr"]
_DFFE = GATE_CODES["dffe"]


@dataclass
class SeqStats:
    """Counters from a sequential run.

    ``gate_evals`` counts gate evaluations (the unit of computational
    load in the paper's model — "the number of gates ... equally
    active"); ``net_events`` counts committed net value changes;
    ``end_time`` is the virtual time at which activity ceased.
    """

    gate_evals: int = 0
    net_events: int = 0
    end_time: int = 0
    activity: np.ndarray | None = None
    #: affected-gate batches routed through the vectorized kernel
    kernel_batches: int = 0
    #: combinational gate evaluations done by the vectorized kernel
    kernel_batch_gates: int = 0
    #: combinational gate evaluations done on the scalar fast path
    kernel_scalar_gates: int = 0


class SequentialSimulator:
    """Unit-delay event-driven simulator over a compiled circuit.

    Parameters
    ----------
    circuit:
        Output of :func:`repro.sim.compile_circuit`.
    record_activity:
        Keep a per-gate evaluation count (used for pre-simulation load
        profiling and as the partitioners' optional activity weights).
    """

    def __init__(
        self,
        circuit: CompiledCircuit,
        record_activity: bool = False,
        record_changes: bool = False,
    ):
        self.circuit = circuit
        self.values = circuit.initial_values.copy()
        # plain-int mirrors beside the authoritative NumPy arrays: the
        # scalar fast path reads these (NumPy scalar indexing is ~10x a
        # Python list read); refreshed from self.values at run() entry
        self._values_list: list[int] = self.values.tolist()
        self._code_list: list[int] = circuit.gate_code_list
        self._out_list: list[int] = circuit.gate_output_list
        self._agenda: dict[int, dict[int, int]] = {}
        self._heap: list[int] = []
        self.now = -1
        self.stats = SeqStats(
            activity=np.zeros(circuit.num_gates, dtype=np.int64)
            if record_activity
            else None
        )
        #: callbacks invoked with the current time after every processed
        #: time step (used by waveform writers and probes)
        self.observers: list = []
        #: optional (time, net, value) history of every committed net
        #: change — the deep oracle the Time Warp tests compare against
        self.record_changes = record_changes
        self.change_log: list[tuple[int, int, int]] = []

    # -- scheduling --------------------------------------------------------

    def schedule(self, time: int, net: int, value: int) -> None:
        """Schedule net ``net`` to take ``value`` at ``time``."""
        if time <= self.now:
            raise SimulationError(
                f"cannot schedule at time {time}; current time is {self.now}"
            )
        slot = self._agenda.get(time)
        if slot is None:
            slot = {}
            self._agenda[time] = slot
            heapq.heappush(self._heap, time)
        slot[net] = value

    def add_inputs(self, events: Iterable[InputEvent]) -> None:
        """Queue a batch of primary-input stimuli."""
        for ev in events:
            self.schedule(ev.time, ev.net, ev.value)

    # -- execution ---------------------------------------------------------

    def run(self, until: int | None = None) -> SeqStats:
        """Process events until quiescence (or ``until``, exclusive).

        Returns the accumulated statistics object (also available as
        ``self.stats``); may be called repeatedly with interleaved
        :meth:`add_inputs`.
        """
        values = self.values
        vlist = self._values_list = self.values.tolist()
        code_list = self._code_list
        out_list = self._out_list
        circuit = self.circuit
        stats = self.stats
        activity = stats.activity
        while self._heap:
            t = self._heap[0]
            if until is not None and t >= until:
                break
            heapq.heappop(self._heap)
            changes = self._agenda.pop(t)
            self.now = t
            old: dict[int, int] = {}
            affected: dict[int, None] = {}  # ordered de-dup of gate ids
            for net, value in changes.items():
                cur = vlist[net]
                if cur == value:
                    continue
                old[net] = cur
                values[net] = value
                vlist[net] = value
                stats.net_events += 1
                for gid in circuit.net_sinks[net]:
                    affected[gid] = None
            if not old:
                continue
            if self.record_changes:
                for net in old:
                    self.change_log.append((t, net, vlist[net]))
            stats.end_time = t
            comb = [g for g in affected if code_list[g] < _DFF]
            comb_out: dict[int, int] | None = None
            if len(comb) >= BATCH_THRESHOLD:
                g = np.fromiter(comb, dtype=np.int64, count=len(comb))
                outs = eval_gates_batch(
                    circuit.gate_code[g],
                    values[circuit.pin_matrix[g]],
                    circuit.pin_mask[g],
                )
                # comb gates appear in `affected` in exactly the order
                # `comb` was built, so the outputs stream back through
                # an iterator — no per-gate dict lookups
                comb_out = iter(outs.tolist())
                stats.kernel_batches += 1
                stats.kernel_batch_gates += len(comb)
            else:
                stats.kernel_scalar_gates += len(comb)
            # per-batch clock-edge cache (see ClusterLP.execute_batch):
            # 0 = no sampling, 1 = known rising edge, 2 = X-involved
            clk_state: dict[int, int] = {}
            for gid in affected:
                stats.gate_evals += 1
                if activity is not None:
                    activity[gid] += 1
                code = code_list[gid]
                out_net = out_list[gid]
                if code < _DFF:
                    if comb_out is not None:
                        new = next(comb_out)
                    else:
                        new = eval_gate_coded(
                            code, [vlist[p] for p in circuit.gate_inputs[gid]]
                        )
                    self.schedule(t + 1, out_net, new)
                else:
                    # every dff variant samples only on clock activity
                    # (pin 1): an idle, falling or non-edge clock means
                    # the FF holds, skipping the state function outright
                    pins = circuit.gate_inputs[gid]
                    c = pins[1]
                    st = clk_state.get(c)
                    if st is None:
                        cb = old.get(c)
                        if cb is None:
                            st = 0
                        else:
                            ca = vlist[c]
                            if ca == 0 or cb == 1:
                                st = 0
                            elif cb == 0 and ca == 1:
                                st = 1  # known rising edge
                            else:
                                st = 2  # X on the clock: unknown edge
                        clk_state[c] = st
                    if st == 0:
                        continue
                    if code == _DFF:
                        # plain dff inline: known edge samples D's
                        # pre-batch value, unknown edge yields X
                        if st == 1:
                            d = pins[0]
                            dv = old.get(d)
                            new = vlist[d] if dv is None else dv
                        else:
                            new = VX
                        self.schedule(t + 1, out_net, new)
                    else:
                        q = _dff_next(code, pins, vlist, old, vlist[out_net])
                        if q is not None:
                            self.schedule(t + 1, out_net, q)
            for observer in self.observers:
                observer(t)
        return stats

    # -- convenience ---------------------------------------------------------

    def value_of(self, net: int) -> int:
        """Current value of a net."""
        return int(self.values[net])

    def output_values(self) -> list[int]:
        """Current values of the primary outputs, port order."""
        return [int(self.values[n]) for n in self.circuit.outputs]


def _dff_next(
    code: int,
    pins: tuple[int, ...],
    values,
    old: Mapping[int, int],
    current_q: int,
) -> int | None:
    """Next-state of a flip-flop given the changes applied at this
    instant; None means no output event.

    ``old`` carries pre-update values for nets that changed now; pins
    other than the clock are sampled from it (setup-time semantics).
    ``values`` is anything indexable by global net id (NumPy array,
    list mirror, or an LP's value view).
    """

    def before(net: int) -> int:
        return old.get(net, int(values[net]))

    clk = pins[1]
    if clk not in old:
        return None  # data moved but no clock activity: FF holds
    clk_before, clk_after = old[clk], int(values[clk])
    if clk_after == 0 or clk_before == 1:
        return None  # falling or non-edge
    known_edge = clk_before == 0 and clk_after == 1
    if code == _DFFR:
        rst = before(pins[2])
        if known_edge and rst == 1:
            return 0
        if rst == VX or not known_edge:
            return VX
        return before(pins[0])
    if code == _DFFE:
        en = before(pins[2])
        if en == 0:
            return None  # enable off: holds regardless of the edge
        if not known_edge or en == VX:
            return VX
        return before(pins[0])
    # plain dff
    if not known_edge:
        return VX
    return before(pins[0])


def simulate_sequential(
    circuit: CompiledCircuit,
    input_events: Iterable[InputEvent],
    record_activity: bool = False,
    until: int | None = None,
) -> tuple[SequentialSimulator, SeqStats]:
    """One-shot sequential run over an input stimulus stream."""
    sim = SequentialSimulator(circuit, record_activity=record_activity)
    sim.add_inputs(input_events)
    stats = sim.run(until=until)
    return sim, stats
