"""Sequential event-driven gate-level simulator.

This is the reference implementation of the paper's simulation model:
**unit gate delay, zero wire delay**, three-valued signals.  It serves
three roles:

1. correctness oracle for the Time Warp kernel (committed results must
   match it exactly);
2. the sequential-time baseline (``T_seq``) against which parallel
   speedups are measured (paper §4.2/§4.3); and
3. the activity profiler whose per-gate event counts ground the cost
   model of the virtual cluster.

Semantics:

* Combinational gates re-evaluate one unit after any input change; a
  scheduled output that equals the net's value at apply time is
  swallowed (inertial glitch suppression at identical values).
* Flip-flops sample their ``d`` (and ``rst``/``en``) pins with the
  values the nets held *just before* the clock edge, which is the
  standard zero-hold-time idealization.  An edge whose before/after
  values involve X produces an X output (conservative unknown edge).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from ..errors import SimulationError
from .compiled import CompiledCircuit
from .events import InputEvent
from .logic import GATE_CODES, VX, eval_gate_coded

__all__ = ["SequentialSimulator", "SeqStats", "simulate_sequential"]

_DFF = GATE_CODES["dff"]
_DFFR = GATE_CODES["dffr"]
_DFFE = GATE_CODES["dffe"]


@dataclass
class SeqStats:
    """Counters from a sequential run.

    ``gate_evals`` counts gate evaluations (the unit of computational
    load in the paper's model — "the number of gates ... equally
    active"); ``net_events`` counts committed net value changes;
    ``end_time`` is the virtual time at which activity ceased.
    """

    gate_evals: int = 0
    net_events: int = 0
    end_time: int = 0
    activity: np.ndarray | None = None


class SequentialSimulator:
    """Unit-delay event-driven simulator over a compiled circuit.

    Parameters
    ----------
    circuit:
        Output of :func:`repro.sim.compile_circuit`.
    record_activity:
        Keep a per-gate evaluation count (used for pre-simulation load
        profiling and as the partitioners' optional activity weights).
    """

    def __init__(
        self,
        circuit: CompiledCircuit,
        record_activity: bool = False,
        record_changes: bool = False,
    ):
        self.circuit = circuit
        self.values = circuit.initial_values.copy()
        self._agenda: dict[int, dict[int, int]] = {}
        self._heap: list[int] = []
        self.now = -1
        self.stats = SeqStats(
            activity=np.zeros(circuit.num_gates, dtype=np.int64)
            if record_activity
            else None
        )
        #: callbacks invoked with the current time after every processed
        #: time step (used by waveform writers and probes)
        self.observers: list = []
        #: optional (time, net, value) history of every committed net
        #: change — the deep oracle the Time Warp tests compare against
        self.record_changes = record_changes
        self.change_log: list[tuple[int, int, int]] = []

    # -- scheduling --------------------------------------------------------

    def schedule(self, time: int, net: int, value: int) -> None:
        """Schedule net ``net`` to take ``value`` at ``time``."""
        if time <= self.now:
            raise SimulationError(
                f"cannot schedule at time {time}; current time is {self.now}"
            )
        slot = self._agenda.get(time)
        if slot is None:
            slot = {}
            self._agenda[time] = slot
            heapq.heappush(self._heap, time)
        slot[net] = value

    def add_inputs(self, events: Iterable[InputEvent]) -> None:
        """Queue a batch of primary-input stimuli."""
        for ev in events:
            self.schedule(ev.time, ev.net, ev.value)

    # -- execution ---------------------------------------------------------

    def run(self, until: int | None = None) -> SeqStats:
        """Process events until quiescence (or ``until``, exclusive).

        Returns the accumulated statistics object (also available as
        ``self.stats``); may be called repeatedly with interleaved
        :meth:`add_inputs`.
        """
        values = self.values
        circuit = self.circuit
        stats = self.stats
        activity = stats.activity
        while self._heap:
            t = self._heap[0]
            if until is not None and t >= until:
                break
            heapq.heappop(self._heap)
            changes = self._agenda.pop(t)
            self.now = t
            old: dict[int, int] = {}
            affected: dict[int, None] = {}  # ordered de-dup of gate ids
            for net, value in changes.items():
                cur = int(values[net])
                if cur == value:
                    continue
                old[net] = cur
                values[net] = value
                stats.net_events += 1
                for gid in circuit.net_sinks[net]:
                    affected[gid] = None
            if not old:
                continue
            if self.record_changes:
                for net in old:
                    self.change_log.append((t, net, int(values[net])))
            stats.end_time = t
            for gid in affected:
                stats.gate_evals += 1
                if activity is not None:
                    activity[gid] += 1
                code = int(circuit.gate_code[gid])
                pins = circuit.gate_inputs[gid]
                out_net = int(circuit.gate_output[gid])
                if code < _DFF:
                    new = eval_gate_coded(code, [int(values[p]) for p in pins])
                    self.schedule(t + 1, out_net, new)
                else:
                    q = _dff_next(
                        code, pins, values, old, int(values[out_net])
                    )
                    if q is not None:
                        self.schedule(t + 1, out_net, q)
            for observer in self.observers:
                observer(t)
        return stats

    # -- convenience ---------------------------------------------------------

    def value_of(self, net: int) -> int:
        """Current value of a net."""
        return int(self.values[net])

    def output_values(self) -> list[int]:
        """Current values of the primary outputs, port order."""
        return [int(self.values[n]) for n in self.circuit.outputs]


def _dff_next(
    code: int,
    pins: tuple[int, ...],
    values: np.ndarray,
    old: Mapping[int, int],
    current_q: int,
) -> int | None:
    """Next-state of a flip-flop given the changes applied at this
    instant; None means no output event.

    ``old`` carries pre-update values for nets that changed now; pins
    other than the clock are sampled from it (setup-time semantics).
    """

    def before(net: int) -> int:
        return old.get(net, int(values[net]))

    clk = pins[1]
    if clk not in old:
        return None  # data moved but no clock activity: FF holds
    clk_before, clk_after = old[clk], int(values[clk])
    if clk_after == 0 or clk_before == 1:
        return None  # falling or non-edge
    known_edge = clk_before == 0 and clk_after == 1
    if code == _DFFR:
        rst = before(pins[2])
        if known_edge and rst == 1:
            return 0
        if rst == VX or not known_edge:
            return VX
        return before(pins[0])
    if code == _DFFE:
        en = before(pins[2])
        if en == 0:
            return None  # enable off: holds regardless of the edge
        if not known_edge or en == VX:
            return VX
        return before(pins[0])
    # plain dff
    if not known_edge:
        return VX
    return before(pins[0])


def simulate_sequential(
    circuit: CompiledCircuit,
    input_events: Iterable[InputEvent],
    record_activity: bool = False,
    until: int | None = None,
) -> tuple[SequentialSimulator, SeqStats]:
    """One-shot sequential run over an input stimulus stream."""
    sim = SequentialSimulator(circuit, record_activity=record_activity)
    sim.add_inputs(input_events)
    stats = sim.run(until=until)
    return sim, stats
