"""Cluster logical process (LP) for the Time Warp kernel.

Following the paper (§4.3) and Clustered Time Warp [Avril & Tropper],
an LP is a *cluster of gates* — a visible node of the circuit
hypergraph: a top-level gate, or a whole Verilog module instance whose
children roll back along with their parent.  Each LP is effectively a
private unit-delay simulator over its gate subset:

* its **state** is the value array of the nets its gates touch, plus
  the internal future-event agenda;
* **input messages** are net-change events for boundary nets driven by
  other LPs (or the vector source);
* **output messages** are emitted when a locally driven boundary net
  changes value (a last-sent-value filter keeps message traffic
  identical to the net's committed change stream).

Rollback uses periodic state saving: every ``checkpoint_interval``
processed timestamp batches the LP snapshots its state; a straggler or
anti-message restores the latest snapshot strictly before the straggler
time and normal re-execution coasts forward.

Cancellation and re-send suppression both run through one mechanism,
the **unconfirmed-send buffer**: a rollback moves every send the
restored region might or might not reproduce into the buffer instead of
transmitting anti-messages for all of them.  When re-execution would
emit a message with the same (send time, net, destination) key:

* identical value → the original message is still correct at its
  receiver; nothing is transmitted and the original is confirmed back
  into the live-send log;
* different value → an anti-message for the original is transmitted
  followed by the new positive.

Any buffered send whose send time falls below the LP's next possible
batch can never be re-issued, so its anti-message is transmitted then
(see :meth:`ClusterLP.flush_unconfirmed`).  Under *aggressive*
cancellation, sends at or after the straggler time skip the buffer and
are cancelled immediately (classic Time Warp); under *lazy*
cancellation they too enter the buffer.  A simpler scheme — cancel
everything after the restore point, or suppress every re-send below the
straggler time ("coast forward") — is unsound under interleaved
rollbacks whose replay regions overlap but see different input sets;
the key-matched buffer handles every interleaving.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import SimulationError
from .compiled import CompiledCircuit, pad_pin_matrix
from .events import Message
from .logic import (
    BATCH_THRESHOLD,
    GATE_CODES,
    VX,
    eval_gate_coded,
    eval_gates_batch,
)

__all__ = ["ClusterLP", "BatchResult", "RollbackResult"]

_DFF = GATE_CODES["dff"]
_DFFR = GATE_CODES["dffr"]


@dataclass
class BatchResult:
    """Outcome of executing one timestamp batch."""

    vt: int
    gate_evals: int
    sends: list[Message]


@dataclass
class RollbackResult:
    """Outcome of a rollback: anti-messages to route and undo counts."""

    anti_messages: list[Message]
    undone_events: int
    restored_to: int


class _Checkpoint:
    """One saved LP state: array copies of the net values and the
    last-sent-value filter, plus the future-event agenda."""

    __slots__ = ("vt", "values", "agenda", "heap", "pending", "size")

    def __init__(
        self,
        vt: int,
        values: np.ndarray,
        agenda: dict[int, dict[int, int]],
        heap: list[int],
        pending: np.ndarray,
    ) -> None:
        self.vt = vt
        self.values = values
        self.agenda = agenda
        self.heap = heap
        self.pending = pending
        # snapshots are immutable once taken, so the size is computed
        # exactly once and the LP keeps a running total instead of
        # re-summing every checkpoint on each GVT round
        self.size = self.nbytes()

    def nbytes(self) -> int:
        # the two arrays report their true buffer sizes; the agenda and
        # heap are estimated at CPython dict-entry / list-slot cost
        return (
            self.values.nbytes
            + self.pending.nbytes
            + 32 * sum(len(s) + 1 for s in self.agenda.values())
            + 8 * len(self.heap)
        )


def _msg_sort_key(m: Message) -> tuple[int, int, int]:
    return (m.recv_time, m.src_lp, m.uid)


def _send_key(m: Message) -> tuple[int, int, int]:
    return (m.send_time, m.net, m.dst_lp)


class ClusterLP:
    """One cluster LP: a gate subset with Time Warp state management.

    Parameters
    ----------
    lid:
        Dense LP id (index into the engine's LP table).
    circuit:
        The shared compiled circuit.
    gate_ids:
        The gates this LP simulates (a partition cluster).
    checkpoint_interval:
        Batches between state saves (periodic state saving).
    lazy:
        Cancellation policy for sends at/after a straggler: buffered
        for re-match (lazy) or cancelled immediately (aggressive).
    """

    def __init__(
        self,
        lid: int,
        circuit: CompiledCircuit,
        gate_ids: Sequence[int],
        checkpoint_interval: int = 8,
        lazy: bool = True,
        name: str | None = None,
        record_changes: bool = False,
    ) -> None:
        self.lid = lid
        self.name = name or f"lp{lid}"
        self.circuit = circuit
        self.gate_ids = tuple(sorted(gate_ids))
        self.checkpoint_interval = checkpoint_interval
        self.lazy = lazy

        # local net table: every net a local gate reads or drives
        code_list = circuit.gate_code_list
        out_list = circuit.gate_output_list
        local_nets: set[int] = set()
        for gid in self.gate_ids:
            local_nets.update(circuit.gate_inputs[gid])
            local_nets.add(out_list[gid])
        self._net_list = sorted(local_nets)
        self._net_loc = {n: i for i, n in enumerate(self._net_list)}

        # per-gate tables indexed by *local gate index* (gate_ids order):
        # plain-int lists for the scalar path, padded local-loc pin
        # matrix + code array for the batched kernel
        gidx = {gid: i for i, gid in enumerate(self.gate_ids)}
        self._g_code: list[int] = []
        self._g_pins_loc: list[tuple[int, ...]] = []
        self._g_pins_glob: list[tuple[int, ...]] = []
        self._g_out_net: list[int] = []
        self._g_out_loc: list[int] = []
        # global clock net per flip-flop (-1 for combinational gates):
        # every dff variant samples only on clock activity, so a batch
        # where the clock net did not change skips the state function
        # outright (its first test would return None anyway)
        self._g_clk: list[int] = []
        net_loc = self._net_loc
        for gid in self.gate_ids:
            pins = circuit.gate_inputs[gid]
            out_net = out_list[gid]
            code = code_list[gid]
            self._g_code.append(code)
            self._g_pins_glob.append(pins)
            self._g_pins_loc.append(tuple(net_loc[p] for p in pins))
            self._g_out_net.append(out_net)
            self._g_out_loc.append(net_loc[out_net])
            self._g_clk.append(pins[1] if code >= _DFF else -1)
        # batch-kernel tables (code array + padded pin matrix) are
        # built on first use: many small LPs never see an affected set
        # reaching BATCH_THRESHOLD, and skipping their construction
        # keeps per-LP setup cost proportional to what actually runs
        self._g_codes_arr: np.ndarray | None = None
        self._pin_mat: np.ndarray | None = None
        self._pin_msk: np.ndarray | None = None

        # local sink gates (local indices) per local net index
        sinks: list[list[int]] = [[] for _ in self._net_list]
        for gid in self.gate_ids:
            for n in circuit.gate_inputs[gid]:
                sinks[self._net_loc[n]].append(gidx[gid])
        self._local_sinks = tuple(tuple(s) for s in sinks)

        # locally driven nets back the last-sent-value filter: an int8
        # array (checkpointed by copy) seeded with the nets' initial
        # values, which is exactly the old dict's .get() default
        self._driven_list = sorted({n for n in self._g_out_net})
        driven_idx = {n: i for i, n in enumerate(self._driven_list)}
        self._g_pend: list[int] = [driven_idx[n] for n in self._g_out_net]
        self._pending = circuit.initial_values[self._driven_list].copy()
        self._pending_list: list[int] = self._pending.tolist()

        #: populated by the engine: driven global net id -> external
        #: reader LP ids
        self.out_dests: dict[int, tuple[int, ...]] = {}

        # dynamic state
        self.values = circuit.initial_values[self._net_list].copy()
        self._vlist: list[int] = self.values.tolist()
        self._agenda: dict[int, dict[int, int]] = {}
        self._heap: list[int] = []
        self.lvt = -1
        #: cached earliest unprocessed virtual time (None = quiescent);
        #: every queue/heap mutator refreshes it so the engine scheduler
        #: reads an attribute instead of re-deriving the minimum
        self.next_vt: int | None = None
        # vectorized-kernel counters (aggregated into RunStats)
        self.kernel_batches = 0
        self.kernel_batch_gates = 0
        self.kernel_scalar_gates = 0

        # queues and logs
        self._in_msgs: list[Message] = []
        self._in_keys: list[tuple[int, int, int]] = []  # parallel sort keys
        self._next_idx = 0
        #: live sends confirmed against the current execution history
        self._out_log: list[Message] = []
        self._batch_log: list[tuple[int, int]] = []  # (vt, gate_evals)
        #: optional committed-history oracle: (vt, global net, value)
        #: entries; rolled-back entries are rewound with the batches
        self.record_changes = record_changes
        self._change_log: list[tuple[int, int, int]] = []
        self._checkpoints: list[_Checkpoint] = []
        self._ckpt_bytes = 0
        self._fossil_floor = -1  # oldest kept restore point (vt)
        self._batches_since_ckpt = 0
        self._uid = 0
        #: live sends awaiting confirmation by re-execution, keyed by
        #: (send_time, net, dst_lp)
        self._unconfirmed: dict[tuple[int, int, int], Message] = {}
        #: anti-messages produced when a re-send superseded a buffered
        #: message with a different value; drained by flush_unconfirmed
        self._deferred_antis: list[Message] = []
        #: anti-messages that arrived before their positive twin
        #: ((uid, src_lp) -> anti); channels are FIFO per machine pair,
        #: but LP migration re-routes queued traffic and can reorder
        self._orphan_antis: dict[tuple[int, int], Message] = {}
        self._save_checkpoint()  # initial state at vt = -1

    # -- inspection -------------------------------------------------------

    def local_value(self, net: int) -> int:
        """Current local value of a global net id (must be local)."""
        return int(self.values[self._net_loc[net]])

    def has_net(self, net: int) -> bool:
        """Whether this LP holds a copy of ``net``."""
        return net in self._net_loc

    def next_pending_vt(self) -> int | None:
        """Virtual time of the earliest unprocessed work, or None."""
        return self.next_vt

    def _recompute_next_vt(self) -> None:
        """Refresh the cached :attr:`next_vt` after a queue mutation."""
        t_int: int | None = self._heap[0] if self._heap else None
        t_in: int | None = (
            self._in_msgs[self._next_idx].recv_time
            if self._next_idx < len(self._in_msgs)
            else None
        )
        if t_int is None:
            self.next_vt = t_in
        elif t_in is None:
            self.next_vt = t_int
        else:
            self.next_vt = min(t_int, t_in)

    def checkpoint_bytes(self) -> int:
        """Approximate memory held by saved states (fossil metric)."""
        return self._ckpt_bytes

    def min_unconfirmed_recv_time(self) -> int | None:
        """Earliest receive time among buffered sends and deferred
        antis — these bound GVT, since their anti-messages may still
        have to be transmitted."""
        if not self._unconfirmed and not self._deferred_antis:
            return None  # the common case: checked once per GVT round
        times = [m.recv_time for m in self._unconfirmed.values()]
        times.extend(m.recv_time for m in self._deferred_antis)
        return min(times) if times else None

    # -- message insertion --------------------------------------------------

    def insert_positive(self, msg: Message) -> RollbackResult | None:
        """Enqueue a positive message; rolls back on a straggler.

        Returns a :class:`RollbackResult` when the message's receive
        time is not after ``lvt`` (the LP had optimistically advanced
        past it), else None.  A positive whose anti-message already
        arrived (channel reordering under LP migration) annihilates on
        the spot without entering the queue.
        """
        orphan = self._orphan_antis.pop((msg.uid, msg.src_lp), None)
        if orphan is not None:
            return None  # annihilated in flight
        rollback = None
        if msg.recv_time <= self.lvt:
            rollback = self._rollback_to(msg.recv_time)
        self._insort(msg)
        return rollback

    def insert_anti(self, msg: Message) -> RollbackResult | None:
        """Process an anti-message: annihilate its positive twin.

        If the twin was already processed, first rolls back so it moves
        into the unprocessed region, then removes it.  If the twin has
        not arrived yet (channels are FIFO per machine pair, but LP
        migration re-routes queued traffic and can reorder), the anti is
        parked and annihilates the twin on arrival.
        """
        rollback = None
        if msg.recv_time <= self.lvt:
            rollback = self._rollback_to(msg.recv_time)
        idx = self._find_twin(msg)
        if idx is None:
            self._orphan_antis[(msg.uid, msg.src_lp)] = msg
            return rollback
        del self._in_msgs[idx]
        del self._in_keys[idx]
        if idx < self._next_idx:  # pragma: no cover - defensive
            self._next_idx -= 1
        self._recompute_next_vt()
        return rollback

    def _insort(self, msg: Message) -> None:
        key = _msg_sort_key(msg)
        idx = bisect_right(self._in_keys, key)
        self._in_msgs.insert(idx, msg)
        self._in_keys.insert(idx, key)
        if idx < self._next_idx:  # pragma: no cover - defensive
            raise SimulationError(
                f"{self.name}: message inserted into processed region "
                f"without rollback (recv_time={msg.recv_time}, lvt={self.lvt})"
            )
        self._recompute_next_vt()

    def _find_twin(self, anti: Message) -> int | None:
        key = _msg_sort_key(anti)
        lo = bisect_left(self._in_keys, key)
        if lo < len(self._in_msgs):
            twin = self._in_msgs[lo]
            if (
                twin.uid == anti.uid
                and twin.src_lp == anti.src_lp
                and twin.recv_time == anti.recv_time
                and twin.sign == 1
            ):
                return lo
        return None

    # -- execution ---------------------------------------------------------

    def execute_batch(self) -> BatchResult:
        """Process every pending event at the earliest pending time.

        Mirrors one timestamp step of the sequential simulator over the
        local gate subset; returns the boundary messages to transmit
        (re-sends confirmed against the unconfirmed buffer are not
        among them — nothing needs to travel for those).
        """
        T = self.next_vt
        if T is None:
            raise SimulationError(f"{self.name}: execute_batch with no work")
        if T <= self.lvt:  # pragma: no cover - defensive
            raise SimulationError(
                f"{self.name}: batch time {T} not after lvt {self.lvt}"
            )
        changes: dict[int, int] = {}
        if self._heap and self._heap[0] == T:
            heapq.heappop(self._heap)
            changes.update(self._agenda.pop(T))
        while (
            self._next_idx < len(self._in_msgs)
            and self._in_msgs[self._next_idx].recv_time == T
        ):
            msg = self._in_msgs[self._next_idx]
            changes[self._net_loc[msg.net]] = msg.value
            self._next_idx += 1

        values = self.values
        vlist = self._vlist
        net_list = self._net_list
        old: dict[int, int] = {}  # keyed by *global* net for _dff_next
        affected: dict[int, None] = {}  # ordered de-dup of local gate idx
        for loc, value in changes.items():
            cur = vlist[loc]
            if cur == value:
                continue
            old[net_list[loc]] = cur
            values[loc] = value
            vlist[loc] = value
            if self.record_changes:
                self._change_log.append((T, net_list[loc], value))
            for gi in self._local_sinks[loc]:
                affected[gi] = None

        sends: list[Message] = []
        n_evals = 0
        if old:
            g_code = self._g_code
            g_out_net = self._g_out_net
            g_out_loc = self._g_out_loc
            g_pend = self._g_pend
            pending = self._pending
            pending_list = self._pending_list
            agenda = self._agenda
            out_dests = self.out_dests
            T1 = T + 1
            comb = [gi for gi in affected if g_code[gi] < _DFF]
            comb_out = None  # iterator over batched outputs, in order
            if len(comb) >= BATCH_THRESHOLD:
                if self._pin_mat is None:
                    self._g_codes_arr = np.array(self._g_code, dtype=np.int8)
                    max_arity = max(len(p) for p in self._g_pins_loc)
                    self._pin_mat, self._pin_msk = pad_pin_matrix(
                        self._g_pins_loc, max_arity
                    )
                g = np.fromiter(comb, dtype=np.int64, count=len(comb))
                outs = eval_gates_batch(
                    self._g_codes_arr[g],
                    values[self._pin_mat[g]],
                    self._pin_msk[g],
                )
                # comb gates appear in `affected` in exactly the order
                # `comb` was built, so the outputs stream back through
                # an iterator — no per-gate dict lookups
                comb_out = iter(outs.tolist())
                self.kernel_batches += 1
                self.kernel_batch_gates += len(comb)
            else:
                self.kernel_scalar_gates += len(comb)
            g_pins_loc = self._g_pins_loc
            # per-batch clock-edge cache, keyed by global clock net:
            # 0 = no sampling (idle clock, falling or non-edge),
            # 1 = known rising edge, 2 = X-involved edge
            clk_state: dict[int, int] = {}
            for gi in affected:
                n_evals += 1
                code = g_code[gi]
                out_net = g_out_net[gi]
                if code < _DFF:
                    if comb_out is not None:
                        new = next(comb_out)
                    else:
                        new = eval_gate_coded(
                            code, [vlist[p] for p in g_pins_loc[gi]]
                        )
                else:
                    c = self._g_clk[gi]
                    st = clk_state.get(c)
                    if st is None:
                        cb = old.get(c)
                        if cb is None:
                            st = 0  # clock idle: the FF holds
                        else:
                            ca = vlist[g_pins_loc[gi][1]]
                            if ca == 0 or cb == 1:
                                st = 0  # falling or non-edge
                            elif cb == 0 and ca == 1:
                                st = 1  # known rising edge
                            else:
                                st = 2  # X on the clock: unknown edge
                        clk_state[c] = st
                    if st == 0:
                        continue  # held: no output event (counted)
                    if code == _DFF:
                        # plain dff inline: known edge samples D's
                        # pre-batch value, unknown edge yields X
                        if st == 1:
                            d = self._g_pins_glob[gi][0]
                            dv = old.get(d)
                            new = vlist[g_pins_loc[gi][0]] if dv is None else dv
                        else:
                            new = VX
                    else:
                        # dffr/dffe inline, mirroring _dff_next: pin 2
                        # (reset / enable) sampled at its pre-batch value
                        pg = self._g_pins_glob[gi]
                        pl = g_pins_loc[gi]
                        x = old.get(pg[2])
                        if x is None:
                            x = vlist[pl[2]]
                        if code == _DFFR:
                            if st == 1 and x == 1:
                                new = 0  # synchronous reset asserted
                            elif st == 2 or x == VX:
                                new = VX
                            else:
                                dv = old.get(pg[0])
                                new = vlist[pl[0]] if dv is None else dv
                        else:  # _DFFE
                            if x == 0:
                                continue  # enable off: holds (counted)
                            if st == 2 or x == VX:
                                new = VX
                            else:
                                dv = old.get(pg[0])
                                new = vlist[pl[0]] if dv is None else dv
                slot = agenda.get(T1)
                if slot is None:
                    slot = {}
                    agenda[T1] = slot
                    heapq.heappush(self._heap, T1)
                slot[g_out_loc[gi]] = new
                dests = out_dests.get(out_net)
                pidx = g_pend[gi]
                if dests is not None and new != pending_list[pidx]:
                    pending[pidx] = new
                    pending_list[pidx] = new
                    for dst in dests:
                        msg = self._emit(T, T1, out_net, new, dst)
                        if msg is not None:
                            sends.append(msg)
        self.lvt = T
        self._batch_log.append((T, n_evals))
        self._out_log.extend(sends)
        self._batches_since_ckpt += 1
        if self._batches_since_ckpt >= self.checkpoint_interval:
            self._save_checkpoint()
        self._recompute_next_vt()
        return BatchResult(T, n_evals, sends)

    def _emit(
        self, send_time: int, recv_time: int, net: int, value: int, dst: int
    ) -> Message | None:
        """Create an outgoing message unless an identical live one is
        already at the receiver (unconfirmed-buffer match)."""
        prev = self._unconfirmed.pop((send_time, net, dst), None)
        if prev is not None:
            if prev.value == value:
                # the original is still correct: confirm it back into
                # the live log, transmit nothing
                self._out_log.append(prev)
                return None
            # superseded: the original must die before the replacement
            self._deferred_antis.append(prev.anti())
        msg = Message(
            recv_time=recv_time,
            net=net,
            value=value,
            src_lp=self.lid,
            dst_lp=dst,
            send_time=send_time,
            uid=self._uid,
        )
        self._uid += 1
        return msg

    def flush_unconfirmed(self, before_vt: int | None = None) -> list[Message]:
        """Anti-messages for buffered sends that can no longer be
        re-issued: re-execution has advanced (or can only advance)
        beyond their send time without re-emitting them.

        ``before_vt=None`` flushes everything (used at quiescence).
        Deferred supersede-antis are always drained.
        """
        out: list[Message] = []
        if self._unconfirmed:
            keep: dict[tuple[int, int, int], Message] = {}
            for key, msg in self._unconfirmed.items():
                if before_vt is None or msg.send_time < before_vt:
                    out.append(msg.anti())
                else:
                    keep[key] = msg
            self._unconfirmed = keep
        if self._deferred_antis:
            out.extend(self._deferred_antis)
            self._deferred_antis = []
        return out

    # -- state saving / rollback -------------------------------------------

    def _save_checkpoint(self) -> None:
        cp = _Checkpoint(
            self.lvt,
            self.values.copy(),
            {t: dict(s) for t, s in self._agenda.items()},
            list(self._heap),
            self._pending.copy(),
        )
        self._checkpoints.append(cp)
        self._ckpt_bytes += cp.size
        self._batches_since_ckpt = 0

    def _rollback_to(self, straggler_vt: int) -> RollbackResult:
        """Restore the latest checkpoint strictly before ``straggler_vt``.

        Sends after the restore point move into the unconfirmed buffer
        for re-execution to confirm or supersede; under aggressive
        cancellation the ones at/after the straggler time (which the
        straggler may genuinely invalidate) are cancelled immediately
        instead.
        """
        cp = None
        while self._checkpoints:
            cand = self._checkpoints[-1]
            if cand.vt < straggler_vt:
                cp = cand
                break
            self._ckpt_bytes -= self._checkpoints.pop().size
        if cp is None:  # pragma: no cover - fossil collection keeps one
            raise SimulationError(
                f"{self.name}: no checkpoint before t={straggler_vt} "
                f"(over-aggressive fossil collection)"
            )
        self.values = cp.values.copy()
        self._vlist = self.values.tolist()
        self._agenda = {t: dict(s) for t, s in cp.agenda.items()}
        self._heap = list(cp.heap)
        self._pending = cp.pending.copy()
        self._pending_list = self._pending.tolist()
        self.lvt = cp.vt
        self._batches_since_ckpt = 0

        # reset the input cursor to the first message after the restore point
        self._next_idx = bisect_right(self._in_keys, (cp.vt, 1 << 62, 1 << 62))
        self._recompute_next_vt()

        antis: list[Message] = []
        keep: list[Message] = []
        for msg in self._out_log:
            if msg.send_time <= cp.vt:
                keep.append(msg)  # below the restore point: untouched
            elif self.lazy or msg.send_time < straggler_vt:
                self._unconfirmed[_send_key(msg)] = msg
            else:
                antis.append(msg.anti())
        self._out_log = keep

        undone = 0
        while self._batch_log and self._batch_log[-1][0] > cp.vt:
            undone += self._batch_log.pop()[1]
        if self.record_changes:
            while self._change_log and self._change_log[-1][0] > cp.vt:
                self._change_log.pop()
        return RollbackResult(antis, undone, cp.vt)

    # -- fossil collection ---------------------------------------------------

    def fossil_collect(self, gvt: int) -> None:
        """Reclaim state older than GVT, keeping one restore point."""
        # keep the newest checkpoint with vt < gvt, drop older ones
        keep_from = 0
        for i, cp in enumerate(self._checkpoints):
            if cp.vt < gvt:
                keep_from = i
        if keep_from > 0:
            for cp in self._checkpoints[:keep_from]:
                self._ckpt_bytes -= cp.size
            del self._checkpoints[:keep_from]
        floor = self._checkpoints[0].vt
        if floor == self._fossil_floor:
            # unchanged restore point: every surviving log entry and
            # processed message already cleared this floor last round,
            # and entries added since are strictly above it
            return
        self._fossil_floor = floor
        # drop processed input messages at or before the kept restore point
        cut = bisect_right(self._in_keys, (floor, 1 << 62, 1 << 62))
        cut = min(cut, self._next_idx)
        if cut:
            del self._in_msgs[:cut]
            del self._in_keys[:cut]
            self._next_idx -= cut
        self._out_log = [m for m in self._out_log if m.send_time > floor]
        self._batch_log = [b for b in self._batch_log if b[0] > floor]
        self._recompute_next_vt()


class _LPValueView:
    """Adapter letting :func:`_dff_next` read LP-local values through
    global net ids (it indexes ``values[net]`` like the sequential
    simulator's flat list mirror)."""

    __slots__ = ("_values", "_loc")

    def __init__(self, values: list[int], loc: dict[int, int]) -> None:
        self._values = values
        self._loc = loc

    def __getitem__(self, net: int) -> int:
        return self._values[self._loc[net]]
