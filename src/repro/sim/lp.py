"""Cluster logical process (LP) for the Time Warp kernel.

Following the paper (§4.3) and Clustered Time Warp [Avril & Tropper],
an LP is a *cluster of gates* — a visible node of the circuit
hypergraph: a top-level gate, or a whole Verilog module instance whose
children roll back along with their parent.  Each LP is effectively a
private unit-delay simulator over its gate subset:

* its **state** is the value array of the nets its gates touch, plus
  the internal future-event agenda;
* **input messages** are net-change events for boundary nets driven by
  other LPs (or the vector source);
* **output messages** are emitted when a locally driven boundary net
  changes value (a last-sent-value filter keeps message traffic
  identical to the net's committed change stream).

Rollback uses periodic state saving: every ``checkpoint_interval``
processed timestamp batches the LP snapshots its state; a straggler or
anti-message restores the latest snapshot strictly before the straggler
time and normal re-execution coasts forward.

Cancellation and re-send suppression both run through one mechanism,
the **unconfirmed-send buffer**: a rollback moves every send the
restored region might or might not reproduce into the buffer instead of
transmitting anti-messages for all of them.  When re-execution would
emit a message with the same (send time, net, destination) key:

* identical value → the original message is still correct at its
  receiver; nothing is transmitted and the original is confirmed back
  into the live-send log;
* different value → an anti-message for the original is transmitted
  followed by the new positive.

Any buffered send whose send time falls below the LP's next possible
batch can never be re-issued, so its anti-message is transmitted then
(see :meth:`ClusterLP.flush_unconfirmed`).  Under *aggressive*
cancellation, sends at or after the straggler time skip the buffer and
are cancelled immediately (classic Time Warp); under *lazy*
cancellation they too enter the buffer.  A simpler scheme — cancel
everything after the restore point, or suppress every re-send below the
straggler time ("coast forward") — is unsound under interleaved
rollbacks whose replay regions overlap but see different input sets;
the key-matched buffer handles every interleaving.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import SimulationError
from .compiled import CompiledCircuit
from .events import Message
from .logic import GATE_CODES, eval_gate_coded
from .sequential import _dff_next

__all__ = ["ClusterLP", "BatchResult", "RollbackResult"]

_DFF = GATE_CODES["dff"]


@dataclass
class BatchResult:
    """Outcome of executing one timestamp batch."""

    vt: int
    gate_evals: int
    sends: list[Message]


@dataclass
class RollbackResult:
    """Outcome of a rollback: anti-messages to route and undo counts."""

    anti_messages: list[Message]
    undone_events: int
    restored_to: int


class _Checkpoint:
    __slots__ = ("vt", "values", "agenda", "heap", "pending_out")

    def __init__(
        self,
        vt: int,
        values: np.ndarray,
        agenda: dict[int, dict[int, int]],
        heap: list[int],
        pending_out: dict[int, int],
    ) -> None:
        self.vt = vt
        self.values = values
        self.agenda = agenda
        self.heap = heap
        self.pending_out = pending_out

    def nbytes(self) -> int:
        return (
            self.values.nbytes
            + 32 * sum(len(s) + 1 for s in self.agenda.values())
            + 8 * len(self.heap)
            + 32 * len(self.pending_out)
        )


def _msg_sort_key(m: Message) -> tuple[int, int, int]:
    return (m.recv_time, m.src_lp, m.uid)


def _send_key(m: Message) -> tuple[int, int, int]:
    return (m.send_time, m.net, m.dst_lp)


class ClusterLP:
    """One cluster LP: a gate subset with Time Warp state management.

    Parameters
    ----------
    lid:
        Dense LP id (index into the engine's LP table).
    circuit:
        The shared compiled circuit.
    gate_ids:
        The gates this LP simulates (a partition cluster).
    checkpoint_interval:
        Batches between state saves (periodic state saving).
    lazy:
        Cancellation policy for sends at/after a straggler: buffered
        for re-match (lazy) or cancelled immediately (aggressive).
    """

    def __init__(
        self,
        lid: int,
        circuit: CompiledCircuit,
        gate_ids: Sequence[int],
        checkpoint_interval: int = 8,
        lazy: bool = True,
        name: str | None = None,
        record_changes: bool = False,
    ) -> None:
        self.lid = lid
        self.name = name or f"lp{lid}"
        self.circuit = circuit
        self.gate_ids = tuple(sorted(gate_ids))
        self.checkpoint_interval = checkpoint_interval
        self.lazy = lazy

        # local net table: every net a local gate reads or drives
        local_nets: set[int] = set()
        for gid in self.gate_ids:
            local_nets.update(circuit.gate_inputs[gid])
            local_nets.add(int(circuit.gate_output[gid]))
        self._net_list = sorted(local_nets)
        self._net_loc = {n: i for i, n in enumerate(self._net_list)}

        # local sink gates per local net index
        sinks: list[list[int]] = [[] for _ in self._net_list]
        for gid in self.gate_ids:
            for n in circuit.gate_inputs[gid]:
                sinks[self._net_loc[n]].append(gid)
        self._local_sinks = tuple(tuple(s) for s in sinks)

        #: populated by the engine: driven global net id -> external
        #: reader LP ids
        self.out_dests: dict[int, tuple[int, ...]] = {}

        # dynamic state
        self.values = circuit.initial_values[self._net_list].copy()
        self._agenda: dict[int, dict[int, int]] = {}
        self._heap: list[int] = []
        self._pending_out: dict[int, int] = {}
        self.lvt = -1

        # queues and logs
        self._in_msgs: list[Message] = []
        self._in_keys: list[tuple[int, int, int]] = []  # parallel sort keys
        self._next_idx = 0
        #: live sends confirmed against the current execution history
        self._out_log: list[Message] = []
        self._batch_log: list[tuple[int, int]] = []  # (vt, gate_evals)
        #: optional committed-history oracle: (vt, global net, value)
        #: entries; rolled-back entries are rewound with the batches
        self.record_changes = record_changes
        self._change_log: list[tuple[int, int, int]] = []
        self._checkpoints: list[_Checkpoint] = []
        self._batches_since_ckpt = 0
        self._uid = 0
        #: live sends awaiting confirmation by re-execution, keyed by
        #: (send_time, net, dst_lp)
        self._unconfirmed: dict[tuple[int, int, int], Message] = {}
        #: anti-messages produced when a re-send superseded a buffered
        #: message with a different value; drained by flush_unconfirmed
        self._deferred_antis: list[Message] = []
        #: anti-messages that arrived before their positive twin
        #: ((uid, src_lp) -> anti); channels are FIFO per machine pair,
        #: but LP migration re-routes queued traffic and can reorder
        self._orphan_antis: dict[tuple[int, int], Message] = {}
        self._save_checkpoint()  # initial state at vt = -1

    # -- inspection -------------------------------------------------------

    def local_value(self, net: int) -> int:
        """Current local value of a global net id (must be local)."""
        return int(self.values[self._net_loc[net]])

    def has_net(self, net: int) -> bool:
        """Whether this LP holds a copy of ``net``."""
        return net in self._net_loc

    def next_pending_vt(self) -> int | None:
        """Virtual time of the earliest unprocessed work, or None."""
        t_int: int | None = self._heap[0] if self._heap else None
        t_in: int | None = (
            self._in_msgs[self._next_idx].recv_time
            if self._next_idx < len(self._in_msgs)
            else None
        )
        if t_int is None:
            return t_in
        if t_in is None:
            return t_int
        return min(t_int, t_in)

    def checkpoint_bytes(self) -> int:
        """Approximate memory held by saved states (fossil metric)."""
        return sum(c.nbytes() for c in self._checkpoints)

    def min_unconfirmed_recv_time(self) -> int | None:
        """Earliest receive time among buffered sends and deferred
        antis — these bound GVT, since their anti-messages may still
        have to be transmitted."""
        times = [m.recv_time for m in self._unconfirmed.values()]
        times.extend(m.recv_time for m in self._deferred_antis)
        return min(times) if times else None

    # -- message insertion --------------------------------------------------

    def insert_positive(self, msg: Message) -> RollbackResult | None:
        """Enqueue a positive message; rolls back on a straggler.

        Returns a :class:`RollbackResult` when the message's receive
        time is not after ``lvt`` (the LP had optimistically advanced
        past it), else None.  A positive whose anti-message already
        arrived (channel reordering under LP migration) annihilates on
        the spot without entering the queue.
        """
        orphan = self._orphan_antis.pop((msg.uid, msg.src_lp), None)
        if orphan is not None:
            return None  # annihilated in flight
        rollback = None
        if msg.recv_time <= self.lvt:
            rollback = self._rollback_to(msg.recv_time)
        self._insort(msg)
        return rollback

    def insert_anti(self, msg: Message) -> RollbackResult | None:
        """Process an anti-message: annihilate its positive twin.

        If the twin was already processed, first rolls back so it moves
        into the unprocessed region, then removes it.  If the twin has
        not arrived yet (channels are FIFO per machine pair, but LP
        migration re-routes queued traffic and can reorder), the anti is
        parked and annihilates the twin on arrival.
        """
        rollback = None
        if msg.recv_time <= self.lvt:
            rollback = self._rollback_to(msg.recv_time)
        idx = self._find_twin(msg)
        if idx is None:
            self._orphan_antis[(msg.uid, msg.src_lp)] = msg
            return rollback
        del self._in_msgs[idx]
        del self._in_keys[idx]
        if idx < self._next_idx:  # pragma: no cover - defensive
            self._next_idx -= 1
        return rollback

    def _insort(self, msg: Message) -> None:
        key = _msg_sort_key(msg)
        idx = bisect_right(self._in_keys, key)
        self._in_msgs.insert(idx, msg)
        self._in_keys.insert(idx, key)
        if idx < self._next_idx:  # pragma: no cover - defensive
            raise SimulationError(
                f"{self.name}: message inserted into processed region "
                f"without rollback (recv_time={msg.recv_time}, lvt={self.lvt})"
            )

    def _find_twin(self, anti: Message) -> int | None:
        key = _msg_sort_key(anti)
        lo = bisect_left(self._in_keys, key)
        if lo < len(self._in_msgs):
            twin = self._in_msgs[lo]
            if (
                twin.uid == anti.uid
                and twin.src_lp == anti.src_lp
                and twin.recv_time == anti.recv_time
                and twin.sign == 1
            ):
                return lo
        return None

    # -- execution ---------------------------------------------------------

    def execute_batch(self) -> BatchResult:
        """Process every pending event at the earliest pending time.

        Mirrors one timestamp step of the sequential simulator over the
        local gate subset; returns the boundary messages to transmit
        (re-sends confirmed against the unconfirmed buffer are not
        among them — nothing needs to travel for those).
        """
        T = self.next_pending_vt()
        if T is None:
            raise SimulationError(f"{self.name}: execute_batch with no work")
        if T <= self.lvt:  # pragma: no cover - defensive
            raise SimulationError(
                f"{self.name}: batch time {T} not after lvt {self.lvt}"
            )
        changes: dict[int, int] = {}
        if self._heap and self._heap[0] == T:
            heapq.heappop(self._heap)
            changes.update(self._agenda.pop(T))
        while (
            self._next_idx < len(self._in_msgs)
            and self._in_msgs[self._next_idx].recv_time == T
        ):
            msg = self._in_msgs[self._next_idx]
            changes[self._net_loc[msg.net]] = msg.value
            self._next_idx += 1

        values = self.values
        circuit = self.circuit
        old: dict[int, int] = {}  # keyed by *global* net for _dff_next
        affected: dict[int, None] = {}
        for loc, value in changes.items():
            cur = int(values[loc])
            if cur == value:
                continue
            old[self._net_list[loc]] = cur
            values[loc] = value
            if self.record_changes:
                self._change_log.append((T, self._net_list[loc], value))
            for gid in self._local_sinks[loc]:
                affected[gid] = None

        sends: list[Message] = []
        n_evals = 0
        if old:
            view = _LPValueView(values, self._net_loc)
            for gid in affected:
                n_evals += 1
                code = int(circuit.gate_code[gid])
                pins = circuit.gate_inputs[gid]
                out_net = int(circuit.gate_output[gid])
                if code < _DFF:
                    new = eval_gate_coded(
                        code, [int(values[self._net_loc[p]]) for p in pins]
                    )
                else:
                    out_loc = self._net_loc[out_net]
                    q = _dff_next(code, pins, view, old, int(values[out_loc]))
                    if q is None:
                        continue
                    new = q
                self._schedule(T + 1, out_net, new)
                dests = self.out_dests.get(out_net)
                if dests and new != self._pending_out.get(
                    out_net, int(circuit.initial_values[out_net])
                ):
                    self._pending_out[out_net] = new
                    for dst in dests:
                        msg = self._emit(T, T + 1, out_net, new, dst)
                        if msg is not None:
                            sends.append(msg)
        self.lvt = T
        self._batch_log.append((T, n_evals))
        self._out_log.extend(sends)
        self._batches_since_ckpt += 1
        if self._batches_since_ckpt >= self.checkpoint_interval:
            self._save_checkpoint()
        return BatchResult(T, n_evals, sends)

    def _emit(
        self, send_time: int, recv_time: int, net: int, value: int, dst: int
    ) -> Message | None:
        """Create an outgoing message unless an identical live one is
        already at the receiver (unconfirmed-buffer match)."""
        prev = self._unconfirmed.pop((send_time, net, dst), None)
        if prev is not None:
            if prev.value == value:
                # the original is still correct: confirm it back into
                # the live log, transmit nothing
                self._out_log.append(prev)
                return None
            # superseded: the original must die before the replacement
            self._deferred_antis.append(prev.anti())
        msg = Message(
            recv_time=recv_time,
            net=net,
            value=value,
            src_lp=self.lid,
            dst_lp=dst,
            send_time=send_time,
            uid=self._uid,
        )
        self._uid += 1
        return msg

    def flush_unconfirmed(self, before_vt: int | None = None) -> list[Message]:
        """Anti-messages for buffered sends that can no longer be
        re-issued: re-execution has advanced (or can only advance)
        beyond their send time without re-emitting them.

        ``before_vt=None`` flushes everything (used at quiescence).
        Deferred supersede-antis are always drained.
        """
        out: list[Message] = []
        if self._unconfirmed:
            keep: dict[tuple[int, int, int], Message] = {}
            for key, msg in self._unconfirmed.items():
                if before_vt is None or msg.send_time < before_vt:
                    out.append(msg.anti())
                else:
                    keep[key] = msg
            self._unconfirmed = keep
        if self._deferred_antis:
            out.extend(self._deferred_antis)
            self._deferred_antis = []
        return out

    def _schedule(self, time: int, net: int, value: int) -> None:
        slot = self._agenda.get(time)
        if slot is None:
            slot = {}
            self._agenda[time] = slot
            heapq.heappush(self._heap, time)
        slot[self._net_loc[net]] = value

    # -- state saving / rollback -------------------------------------------

    def _save_checkpoint(self) -> None:
        self._checkpoints.append(
            _Checkpoint(
                self.lvt,
                self.values.copy(),
                {t: dict(s) for t, s in self._agenda.items()},
                list(self._heap),
                dict(self._pending_out),
            )
        )
        self._batches_since_ckpt = 0

    def _rollback_to(self, straggler_vt: int) -> RollbackResult:
        """Restore the latest checkpoint strictly before ``straggler_vt``.

        Sends after the restore point move into the unconfirmed buffer
        for re-execution to confirm or supersede; under aggressive
        cancellation the ones at/after the straggler time (which the
        straggler may genuinely invalidate) are cancelled immediately
        instead.
        """
        cp = None
        while self._checkpoints:
            cand = self._checkpoints[-1]
            if cand.vt < straggler_vt:
                cp = cand
                break
            self._checkpoints.pop()
        if cp is None:  # pragma: no cover - fossil collection keeps one
            raise SimulationError(
                f"{self.name}: no checkpoint before t={straggler_vt} "
                f"(over-aggressive fossil collection)"
            )
        self.values = cp.values.copy()
        self._agenda = {t: dict(s) for t, s in cp.agenda.items()}
        self._heap = list(cp.heap)
        self._pending_out = dict(cp.pending_out)
        self.lvt = cp.vt
        self._batches_since_ckpt = 0

        # reset the input cursor to the first message after the restore point
        self._next_idx = bisect_right(self._in_keys, (cp.vt, 1 << 62, 1 << 62))

        antis: list[Message] = []
        keep: list[Message] = []
        for msg in self._out_log:
            if msg.send_time <= cp.vt:
                keep.append(msg)  # below the restore point: untouched
            elif self.lazy or msg.send_time < straggler_vt:
                self._unconfirmed[_send_key(msg)] = msg
            else:
                antis.append(msg.anti())
        self._out_log = keep

        undone = 0
        while self._batch_log and self._batch_log[-1][0] > cp.vt:
            undone += self._batch_log.pop()[1]
        if self.record_changes:
            while self._change_log and self._change_log[-1][0] > cp.vt:
                self._change_log.pop()
        return RollbackResult(antis, undone, cp.vt)

    # -- fossil collection ---------------------------------------------------

    def fossil_collect(self, gvt: int) -> None:
        """Reclaim state older than GVT, keeping one restore point."""
        # keep the newest checkpoint with vt < gvt, drop older ones
        keep_from = 0
        for i, cp in enumerate(self._checkpoints):
            if cp.vt < gvt:
                keep_from = i
        if keep_from > 0:
            del self._checkpoints[:keep_from]
        floor = self._checkpoints[0].vt
        # drop processed input messages at or before the kept restore point
        cut = bisect_right(self._in_keys, (floor, 1 << 62, 1 << 62))
        cut = min(cut, self._next_idx)
        if cut:
            del self._in_msgs[:cut]
            del self._in_keys[:cut]
            self._next_idx -= cut
        self._out_log = [m for m in self._out_log if m.send_time > floor]
        self._batch_log = [b for b in self._batch_log if b[0] > floor]


class _LPValueView:
    """Adapter letting :func:`_dff_next` read LP-local values through
    global net ids (it indexes ``values[net]`` like the sequential
    simulator's flat array)."""

    __slots__ = ("_values", "_loc")

    def __init__(self, values: np.ndarray, loc: dict[int, int]) -> None:
        self._values = values
        self._loc = loc

    def __getitem__(self, net: int) -> int:
        return int(self._values[self._loc[net]])
