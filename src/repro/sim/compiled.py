"""Compiled circuit: the netlist lowered to flat arrays for simulation.

Both the sequential reference simulator and the Time Warp logical
processes evaluate gates through this structure, so their results are
comparable by construction.  Compilation resolves gate types to dense
codes, freezes pin lists as tuples, and precomputes per-net sink lists.

Sequential cells keep their input pin roles: ``dff`` = (d, clk),
``dffr`` = (d, clk, rst), ``dffe`` = (d, clk, en).

Two construction paths feed the same structure:

* the object-model :class:`~repro.verilog.netlist.Netlist` (parsed
  circuits) — a per-gate Python pass, every mirror built eagerly;
* the array-native :class:`~repro.verilog.netlist_csr.NetlistCSR`
  (streamed million-gate circuits) — pure vectorized array work; the
  Python-object mirrors (``gate_inputs`` / ``net_sinks`` tuples and the
  plain-int lists) materialize lazily on first access, so array-only
  consumers never pay the O(gates) tuple construction.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import SimulationError
from ..verilog.netlist import CONST0, CONST1, Netlist
from ..verilog.netlist_csr import NetlistCSR
from .logic import GATE_CODES, SEQ_CODE_MIN, VX, eval_gate_coded

__all__ = ["CompiledCircuit", "compile_circuit", "pad_pin_matrix"]

#: Python-object mirrors of the array state, built together on first
#: access through :meth:`CompiledCircuit.__getattr__` when the source
#: was a :class:`NetlistCSR` (the object-model path sets them eagerly).
_LAZY_MIRRORS = frozenset(
    {"gate_inputs", "net_sinks", "gate_code_list", "gate_output_list"}
)


class CompiledCircuit:
    """Array-form circuit shared by all simulators.

    Attributes
    ----------
    gate_code:
        ``(num_gates,)`` int8 array of :data:`~repro.sim.logic.GATE_CODES`.
    gate_inputs:
        Tuple of input-net tuples per gate.
    gate_output:
        ``(num_gates,)`` output net id per gate.
    net_sinks:
        Tuple of sink-gate tuples per net.
    initial_values:
        ``(num_nets,)`` int8 initial value array: constants at their
        value, everything else X.
    pin_net / pin_offsets:
        CSR form of ``gate_inputs``: gate ``g`` reads nets
        ``pin_net[pin_offsets[g]:pin_offsets[g + 1]]`` in pin order.
    sink_gate / sink_offsets:
        CSR form of ``net_sinks``: net ``n`` feeds gates
        ``sink_gate[sink_offsets[n]:sink_offsets[n + 1]]``.
    pin_matrix / pin_mask:
        ``(num_gates, max_arity)`` dense pin-net matrix padded with 0
        plus its validity mask — the gather index for the batched gate
        kernel (:func:`repro.sim.logic.eval_gates_batch`).
    """

    __slots__ = (
        "netlist",
        "gate_code",
        "gate_inputs",
        "gate_output",
        "net_sinks",
        "initial_values",
        "num_gates",
        "num_nets",
        "inputs",
        "outputs",
        "pin_net",
        "pin_offsets",
        "sink_gate",
        "sink_offsets",
        "pin_matrix",
        "pin_mask",
        "max_arity",
        "gate_code_list",
        "gate_output_list",
    )

    def __init__(self, netlist: Netlist | NetlistCSR) -> None:
        self.netlist = netlist
        self.num_gates = netlist.num_gates
        self.num_nets = netlist.num_nets
        if isinstance(netlist, NetlistCSR):
            self._init_from_csr(netlist)
            return
        codes = np.zeros(self.num_gates, dtype=np.int8)
        for g in netlist.gates:
            code = GATE_CODES.get(g.gtype)
            if code is None:
                raise SimulationError(f"gate {g.name!r} has unknown type {g.gtype!r}")
            codes[g.gid] = code
        self.gate_code = codes
        self.gate_inputs = tuple(g.inputs for g in netlist.gates)
        self.gate_output = np.array(
            [g.output for g in netlist.gates], dtype=np.int64
        ) if self.num_gates else np.zeros(0, dtype=np.int64)
        self.net_sinks = tuple(tuple(s) for s in netlist.net_sinks)
        init = np.full(self.num_nets, VX, dtype=np.int8)
        init[CONST0] = 0
        init[CONST1] = 1
        self.initial_values = init
        self.inputs = tuple(netlist.inputs)
        self.outputs = tuple(netlist.outputs)

        # CSR pin/sink arrays + the padded pin matrix for batched eval
        pin_offsets = np.zeros(self.num_gates + 1, dtype=np.int64)
        for gid, pins in enumerate(self.gate_inputs):
            pin_offsets[gid + 1] = pin_offsets[gid] + len(pins)
        self.pin_offsets = pin_offsets
        self.pin_net = np.fromiter(
            (n for pins in self.gate_inputs for n in pins),
            dtype=np.int64,
            count=int(pin_offsets[-1]),
        )
        sink_offsets = np.zeros(self.num_nets + 1, dtype=np.int64)
        for net, sinks in enumerate(self.net_sinks):
            sink_offsets[net + 1] = sink_offsets[net] + len(sinks)
        self.sink_offsets = sink_offsets
        self.sink_gate = np.fromiter(
            (g for sinks in self.net_sinks for g in sinks),
            dtype=np.int64,
            count=int(sink_offsets[-1]),
        )
        self.max_arity = max(
            (len(pins) for pins in self.gate_inputs), default=0
        )
        self.pin_matrix, self.pin_mask = pad_pin_matrix(
            self.gate_inputs, self.max_arity
        )
        # plain-int mirrors of the per-gate arrays: CPython reads a
        # list element an order of magnitude faster than a NumPy
        # scalar, and every simulator instance (and each cluster LP)
        # indexes these per gate — shared here so they are built once
        # per compiled circuit, not once per simulator construction
        self.gate_code_list: list[int] = self.gate_code.tolist()
        self.gate_output_list: list[int] = self.gate_output.tolist()

    def _init_from_csr(self, csr: NetlistCSR) -> None:
        """Vectorized compilation of an array-native netlist.

        No per-gate Python loop: the type table maps through one fancy
        index, the pin CSR is adopted as-is, the sink CSR falls out of
        one stable sort of the pins by net, and the padded pin matrix
        is a single masked scatter.  The tuple/list mirrors are *not*
        built here — see :meth:`__getattr__`.
        """
        table = np.empty(max(1, len(csr.gate_types)), dtype=np.int8)
        for i, name in enumerate(csr.gate_types):
            code = GATE_CODES.get(name)
            if code is None:
                raise SimulationError(
                    f"gate type {name!r} is unknown to the simulator"
                )
            table[i] = code
        self.gate_code = (
            table[csr.gate_code] if self.num_gates
            else np.zeros(0, dtype=np.int8)
        )
        self.gate_output = csr.gate_output
        init = np.full(self.num_nets, VX, dtype=np.int8)
        init[CONST0] = 0
        init[CONST1] = 1
        self.initial_values = init
        self.inputs = tuple(csr.inputs.tolist())
        self.outputs = tuple(csr.outputs.tolist())
        self.pin_offsets = csr.pin_ptr
        self.pin_net = csr.pin_net
        arity = np.diff(csr.pin_ptr)
        # sinks per net in (gid, pin position) order — exactly the
        # append order of Netlist.add_gate, duplicates preserved
        reading = np.repeat(
            np.arange(self.num_gates, dtype=np.int64), arity
        )
        order = np.argsort(self.pin_net, kind="stable")
        self.sink_gate = reading[order]
        sink_offsets = np.zeros(self.num_nets + 1, dtype=np.int64)
        counts = np.bincount(self.pin_net, minlength=self.num_nets)
        np.cumsum(counts, dtype=np.int64, out=sink_offsets[1:])
        self.sink_offsets = sink_offsets
        self.max_arity = int(arity.max()) if self.num_gates else 0
        mask = (
            np.arange(self.max_arity, dtype=np.int64)[None, :]
            < arity[:, None]
        )
        matrix = np.zeros((self.num_gates, self.max_arity), dtype=np.int64)
        matrix[mask] = self.pin_net
        self.pin_matrix = matrix
        self.pin_mask = mask

    def __getattr__(self, name: str):
        # array-native compilation leaves the Python-object mirrors
        # unset (their __slots__ raise AttributeError); first scalar
        # access lands here and materializes all of them together
        if name in _LAZY_MIRRORS:
            self._build_scalar_mirrors()
            return getattr(self, name)
        raise AttributeError(
            f"{type(self).__name__!s} object has no attribute {name!r}"
        )

    def _build_scalar_mirrors(self) -> None:
        """Materialize the tuple/list mirrors from the CSR arrays."""
        ptr = self.pin_offsets.tolist()
        flat = self.pin_net.tolist()
        self.gate_inputs = tuple(
            tuple(flat[ptr[g]:ptr[g + 1]]) for g in range(self.num_gates)
        )
        sptr = self.sink_offsets.tolist()
        sflat = self.sink_gate.tolist()
        self.net_sinks = tuple(
            tuple(sflat[sptr[n]:sptr[n + 1]]) for n in range(self.num_nets)
        )
        self.gate_code_list = self.gate_code.tolist()
        self.gate_output_list = self.gate_output.tolist()

    def is_sequential_gate(self, gid: int) -> bool:
        """True if gate ``gid`` is a state-holding cell."""
        return int(self.gate_code[gid]) >= SEQ_CODE_MIN

    def eval_combinational(self, gid: int, values: np.ndarray) -> int:
        """Evaluate combinational gate ``gid`` against a value array."""
        pins = self.gate_inputs[gid]
        return eval_gate_coded(int(self.gate_code[gid]), [int(values[p]) for p in pins])


def pad_pin_matrix(
    pin_lists: Sequence[Sequence[int]], max_arity: int
) -> tuple[np.ndarray, np.ndarray]:
    """Pad ragged pin lists to a dense ``(n, max_arity)`` index matrix.

    Returns ``(matrix, mask)``: pad cells index 0 and are False in the
    mask.  Shared by the global circuit and each LP's local pin table.
    """
    n = len(pin_lists)
    matrix = np.zeros((n, max_arity), dtype=np.int64)
    mask = np.zeros((n, max_arity), dtype=bool)
    for i, pins in enumerate(pin_lists):
        matrix[i, : len(pins)] = pins
        mask[i, : len(pins)] = True
    return matrix, mask


def compile_circuit(netlist: Netlist) -> CompiledCircuit:
    """Lower an elaborated netlist for simulation."""
    return CompiledCircuit(netlist)


def combinational_depth(circuit: CompiledCircuit) -> int:
    """Longest combinational path in gate levels.

    Sources are primary inputs, constants and flip-flop outputs; paths
    stop at flip-flop inputs.  With the unit-delay model this is the
    settle time a clock period must exceed for registered values to be
    meaningful.  Combinational cycles (rare, e.g. latch-like structures)
    are broken by capping relaxation, and the cap is returned.
    """
    num_gates = circuit.num_gates
    depth = [0] * circuit.num_nets
    order_changed = True
    rounds = 0
    max_rounds = num_gates + 2
    while order_changed and rounds < max_rounds:
        order_changed = False
        rounds += 1
        for gid in range(num_gates):
            if circuit.is_sequential_gate(gid):
                continue
            d = 1 + max(
                (depth[p] for p in circuit.gate_inputs[gid]), default=0
            )
            out = int(circuit.gate_output[gid])
            if d > depth[out]:
                depth[out] = d
                order_changed = True
    return max(depth, default=0)
