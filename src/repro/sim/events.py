"""Event types shared by the simulators.

An *input event* drives a primary-input net to a value at a virtual
time; simulators consume streams of them.  The Time Warp kernel extends
this with signed messages (positive events and their anti-message
twins) carrying send/receive metadata for rollback bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["InputEvent", "Message"]


@dataclass(frozen=True, order=True)
class InputEvent:
    """A primary-input stimulus: drive ``net`` to ``value`` at ``time``."""

    time: int
    net: int
    value: int


@dataclass(frozen=True)
class Message:
    """A Time Warp message: a net-change event sent between LPs.

    ``sign`` is +1 for a positive message, -1 for its anti-message;
    the pair is identical in every other field, which is how
    annihilation matches them (classic Jefferson Time Warp).

    ``uid`` is a sender-assigned serial making each positive/anti pair
    unique even when the same (net, value, time) is re-sent after a
    rollback and re-execution.
    """

    recv_time: int
    net: int
    value: int
    src_lp: int
    dst_lp: int
    send_time: int
    uid: int
    sign: int = 1

    def anti(self) -> "Message":
        """The annihilating twin of a positive message."""
        return Message(
            self.recv_time,
            self.net,
            self.value,
            self.src_lp,
            self.dst_lp,
            self.send_time,
            self.uid,
            sign=-self.sign,
        )

    def key(self) -> tuple[int, int, int, int]:
        """Identity key used for annihilation matching."""
        return (self.uid, self.src_lp, self.dst_lp, self.recv_time)
