"""Three-valued (0 / 1 / X) gate evaluation.

The paper assumes a unit gate delay and zero wire delay; signal values
are the synthesis-level trio ``0``, ``1``, ``X`` (unknown).  ``X``
propagation is *accurate*, not pessimistic: ``and(0, X) = 0`` and
``or(1, X) = 1`` because a controlling input decides the output
regardless of the unknown.

Values are plain ints (``X == 2``) so they pack into ``int8`` NumPy
arrays; evaluation uses precomputed 3x3 fold tables, giving the
event-driven simulators a tight inner loop without conditionals.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "V0",
    "V1",
    "VX",
    "GATE_CODES",
    "CODE_NAMES",
    "BATCH_THRESHOLD",
    "eval_gate",
    "eval_gate_coded",
    "eval_gates_batch",
    "fold_table",
    "invert",
    "value_name",
]

V0 = 0
V1 = 1
VX = 2

#: dense integer codes for gate types (sequential cells get codes too;
#: the simulators special-case them by code).
GATE_CODES: dict[str, int] = {
    "and": 0,
    "or": 1,
    "nand": 2,
    "nor": 3,
    "xor": 4,
    "xnor": 5,
    "buf": 6,
    "not": 7,
    "dff": 8,
    "dffr": 9,
    "dffe": 10,
}

CODE_NAMES: list[str] = [
    name for name, _ in sorted(GATE_CODES.items(), key=lambda kv: kv[1])
]

SEQ_CODE_MIN = GATE_CODES["dff"]


def _and2(a: int, b: int) -> int:
    if a == V0 or b == V0:
        return V0
    if a == VX or b == VX:
        return VX
    return V1


def _or2(a: int, b: int) -> int:
    if a == V1 or b == V1:
        return V1
    if a == VX or b == VX:
        return VX
    return V0


def _xor2(a: int, b: int) -> int:
    if a == VX or b == VX:
        return VX
    return a ^ b


_NOT = (V1, V0, VX)

# 3x3 fold tables per associative base op
_AND_T = np.array([[_and2(a, b) for b in range(3)] for a in range(3)], dtype=np.int8)
_OR_T = np.array([[_or2(a, b) for b in range(3)] for a in range(3)], dtype=np.int8)
_XOR_T = np.array([[_xor2(a, b) for b in range(3)] for a in range(3)], dtype=np.int8)

#: ``fold_table(code)`` → (3x3 table, invert_output) for combinational codes
_FOLDS: dict[int, tuple[np.ndarray, bool]] = {
    GATE_CODES["and"]: (_AND_T, False),
    GATE_CODES["nand"]: (_AND_T, True),
    GATE_CODES["or"]: (_OR_T, False),
    GATE_CODES["nor"]: (_OR_T, True),
    GATE_CODES["xor"]: (_XOR_T, False),
    GATE_CODES["xnor"]: (_XOR_T, True),
}

#: plain-tuple mirror of :data:`_FOLDS` — the scalar fast path folds
#: through Python tuples, which beats NumPy scalar indexing ~10x on the
#: small batches that dominate event-driven workloads
_FOLDS_PY: dict[int, tuple[tuple[tuple[int, ...], ...], bool]] = {
    code: (tuple(tuple(int(v) for v in row) for row in table), inv)
    for code, (table, inv) in _FOLDS.items()
}

#: affected-gate batches at or above this size go through the padded
#: NumPy kernel (:func:`eval_gates_batch`); smaller ones stay on the
#: scalar tuple-table path, whose per-gate cost is lower than the fixed
#: NumPy dispatch overhead
BATCH_THRESHOLD = 24


def fold_table(code: int) -> tuple[np.ndarray, bool]:
    """(3x3 fold table, output-inverted flag) for a variadic gate code."""
    return _FOLDS[code]


def invert(v: int) -> int:
    """Three-valued NOT."""
    return _NOT[v]


def eval_gate_coded(code: int, values: tuple[int, ...] | list[int]) -> int:
    """Evaluate a *combinational* gate by dense code over input values."""
    if code == 6:  # buf
        return values[0]
    if code == 7:  # not
        return _NOT[values[0]]
    table, inv = _FOLDS_PY[code]
    acc = values[0]
    for v in values[1:]:
        acc = table[acc][v]
    return _NOT[acc] if inv else acc


# -- vectorized batch kernel ------------------------------------------------
#
# Rank trick: under the value order 0 < X < 1 three-valued AND is the
# minimum and OR is the maximum (a controlling 0/1 dominates, X sits in
# the middle), so mapping values through _RANK = [0, 2, 1] turns both
# variadic folds into masked min/max reductions; _RANK is an involution,
# so it also maps ranks back to values.  XOR is X if any input is X,
# else the parity of the ones.  buf/not pass pin 0 through (optionally
# inverted).  nand/nor/xnor invert the base op through _NOT_ARR.

_RANK = np.array([0, 2, 1], dtype=np.int8)
_NOT_ARR = np.array(_NOT, dtype=np.int8)

#: base reduction per combinational code: 0 = and-fold, 1 = or-fold,
#: 2 = xor-fold, 3 = unary (pin 0)
_BASE_OP = np.array([0, 1, 0, 1, 2, 2, 3, 3], dtype=np.int8)
_INV_OUT = np.array(
    [False, False, True, True, False, True, False, True], dtype=bool
)


def eval_gates_batch(
    codes: np.ndarray, pin_values: np.ndarray, pin_mask: np.ndarray
) -> np.ndarray:
    """Evaluate a batch of *combinational* gates at once.

    Parameters
    ----------
    codes:
        ``(n,)`` integer gate codes (all ``< SEQ_CODE_MIN``).
    pin_values:
        ``(n, max_arity)`` int8 input values, one row per gate, padded
        to the widest gate; pad cells may hold anything.
    pin_mask:
        ``(n, max_arity)`` bool validity mask (True = real pin).

    Returns the ``(n,)`` int8 output values, bit-identical to calling
    :func:`eval_gate_coded` per row over the unpadded pins.
    """
    codes = np.asarray(codes)
    base = _BASE_OP[codes]
    rank = _RANK[pin_values]
    and_out = _RANK[np.where(pin_mask, rank, 2).min(axis=1)]
    or_out = _RANK[np.where(pin_mask, rank, 0).max(axis=1)]
    any_x = ((pin_values == VX) & pin_mask).any(axis=1)
    ones = ((pin_values == V1) & pin_mask).sum(axis=1)
    xor_out = np.where(any_x, VX, (ones & 1)).astype(np.int8)
    unary = pin_values[:, 0]
    out = np.choose(base, (and_out, or_out, xor_out, unary))
    return np.where(_INV_OUT[codes], _NOT_ARR[out], out)


def eval_gate(gtype: str, values: tuple[int, ...] | list[int]) -> int:
    """Evaluate a combinational gate by primitive name."""
    return eval_gate_coded(GATE_CODES[gtype], values)


def value_name(v: int) -> str:
    """Pretty form of a signal value (``"0"``, ``"1"``, ``"x"``)."""
    return ("0", "1", "x")[v]
