"""Ablation — cone partitioning vs random initial assignment.

The paper seeds the pairwise improvement with cone partitioning because
it "emphasizes the concurrency present in the design"; this benchmark
quantifies what that seeding is worth after full FM refinement.
"""

from _shared import CFG, emit, table_rows

from repro.bench import format_table
from repro.circuits import load_circuit
from repro.core import design_driven_partition


def test_initial_partitioners(benchmark):
    netlist = load_circuit(CFG.circuit)

    def sweep():
        rows = []
        for initial in ("cone", "random"):
            for k in (2, 4):
                r = design_driven_partition(
                    netlist, k=k, b=10.0, seed=CFG.seed, initial=initial
                )
                rows.append([initial, k, r.cut_size, r.fm_rounds])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    headers = ["initial", "k", "cut", "fm rounds"]
    emit(
        "ablation_initial",
        format_table(
            headers,
            rows,
            title=f"Ablation: initial partition (b=10, {CFG.circuit})",
        ),
        rows=table_rows(headers, rows),
        params={"b": 10.0},
    )
    # both must produce valid partitions; cone should not be a
    # regression in aggregate
    cone = sum(r[2] for r in rows if r[0] == "cone")
    rand = sum(r[2] for r in rows if r[0] == "random")
    assert cone <= rand * 1.5
