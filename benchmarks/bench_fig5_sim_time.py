"""Figure 5 — simulation time vs number of machines (1..4).

Paper: ~3640 s sequential falling to ~1906 s at k=4, with visibly
diminishing returns ("as the number of processors increases, the
circuit is divided more finely and the design hierarchy is destroyed").
"""

from _shared import CFG, emit, full_sim_rows

from repro.bench import PAPER_SEQ_TIME_FULL, PAPER_TABLE5, format_series


def test_fig5_simulation_time(benchmark):
    def compute():
        rows, seq_wall = full_sim_rows()
        xs = [1] + [r.k for r in rows]
        ys = [seq_wall] + [r.sim_time for r in rows]
        return xs, ys

    xs, ys = benchmark.pedantic(compute, rounds=1, iterations=1)
    paper = [PAPER_SEQ_TIME_FULL] + [PAPER_TABLE5[k][2] for k in (2, 3, 4)]
    series = format_series(
        "machines",
        xs,
        {
            "measured time (s)": [f"{y:.4f}" for y in ys],
            "paper time (s)": paper,
        },
        title=f"Figure 5: simulation time vs machines ({CFG.circuit})",
    )
    emit(
        "fig5_sim_time",
        series,
        series={"machines": xs, "measured_time_s": ys, "paper_time_s": paper},
    )
    # monotone decrease with diminishing returns
    assert all(ys[i + 1] < ys[i] for i in range(len(ys) - 1))
    first_drop = ys[0] - ys[1]
    last_drop = ys[-2] - ys[-1]
    assert last_drop < first_drop
