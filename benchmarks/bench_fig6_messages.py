"""Figure 6 — message count vs machines during pre-simulation, per b.

Paper: up to ~7e5 messages; counts grow with machine count and shrink
as the balance constraint relaxes (bigger b keeps modules whole, so
fewer nets cross machines).
"""

from _shared import CFG, emit, presim_study

from repro.bench import fig6_fig7_messages_rollbacks, format_series


def test_fig6_messages(benchmark):
    def compute():
        return fig6_fig7_messages_rollbacks(presim_study())

    messages, _, ks = benchmark.pedantic(compute, rounds=1, iterations=1)
    series = format_series(
        "machines",
        ks,
        {f"b={b}": counts for b, counts in sorted(messages.items())},
        title=f"Figure 6: messages during pre-simulation ({CFG.circuit})",
    )
    emit(
        "fig6_messages",
        series,
        series={"machines": list(ks),
                **{f"b={b}": counts for b, counts in sorted(messages.items())}},
    )
    bs = sorted(messages)
    # tightest b sends the most messages at the largest k
    k_idx = len(ks) - 1
    assert messages[bs[0]][k_idx] >= messages[bs[-1]][k_idx]
    # messages grow with machine count for the tightest b
    assert messages[bs[0]][-1] >= messages[bs[0]][0]
