"""Ablation — lazy vs aggressive cancellation in the Time Warp kernel.

Not in the paper (OOCTW used aggressive cancellation on real hardware,
where timing jitter damps rollback echo); on a deterministic virtual
cluster lazy cancellation suppresses identical re-sends and transmits
no anti-messages for them, so it should process fewer events and send
fewer messages for identical committed results.
"""

from dataclasses import replace

from _shared import CFG, emit, table_rows

from repro.bench import format_table
from repro.circuits import load_circuit, random_vectors
from repro.core import design_driven_partition
from repro.sim import ClusterSpec, TimeWarpConfig, compile_circuit, run_partitioned


def test_cancellation_modes(benchmark):
    netlist = load_circuit(CFG.circuit)
    circuit = compile_circuit(netlist)
    events = random_vectors(netlist, CFG.presim_vectors, seed=CFG.seed)
    part = design_driven_partition(netlist, k=4, b=7.5, seed=CFG.seed)
    clusters, lpm = part.to_simulation()
    spec = ClusterSpec(num_machines=4)

    def sweep():
        rows = []
        for lazy in (True, False):
            rep = run_partitioned(
                circuit, clusters, lpm, events, spec,
                TimeWarpConfig(lazy_cancellation=lazy),
            )
            rows.append(
                [
                    "lazy" if lazy else "aggressive",
                    rep.processed_events,
                    rep.committed_events,
                    rep.messages,
                    rep.anti_messages,
                    rep.rollbacks,
                    f"{rep.speedup:.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    headers = ["mode", "processed", "committed", "msgs", "antis", "rollbacks",
               "speedup"]
    emit(
        "ablation_cancellation",
        format_table(
            headers,
            rows,
            title=f"Ablation: cancellation policy (k=4, b=7.5, {CFG.circuit})",
        ),
        rows=table_rows(headers, rows),
        params={"k": 4, "b": 7.5},
    )
    lazy, aggressive = rows
    assert lazy[2] == aggressive[2], "committed work must be identical"
    assert lazy[4] <= aggressive[4], "lazy sends at most as many antis"
