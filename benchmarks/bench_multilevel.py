"""Extension: multilevel vs direct k-way at 100k-vertex scale.

The multilevel engine (docs/multilevel.md) exists for exactly one
reason: flat FM refinement loses its global view as hypergraphs grow,
while coarsening preserves it.  This benchmark makes that claim — and
the engine's determinism contract — load-bearing on a deterministic
synthetic hypergraph of 100 000 weighted vertices (sliding local
windows, wide block nets, sparse long-range pairs: the shape of a flat
gate netlist):

* **quality gate** — the multilevel cut must beat or match the direct
  k-way comparator at equal Formula-1 balance (same LPT seeding, same
  FM budget; the only difference is the hierarchy), asserted;
* **determinism gate** — the sha256 of the assignment must be
  identical at 1, 2 and 4 refinement workers, asserted and printed;
* **wall time** — host seconds per engine land in the quarantined
  ``host_timings`` channel; every table row is deterministic and gates
  byte-for-byte under ``make_experiments_md.py --check --baseline``.
"""

import hashlib
import os

import numpy as np

from _shared import CFG, emit, table_rows

from repro.bench import format_table
from repro.core import direct_kway_partition, multilevel_kway_partition
from repro.hypergraph import Hypergraph, hyperedge_cut
from repro.obs import MetricsRecorder

N_VERTICES = 100_000
K = 4
B = 10.0
WORKER_COUNTS = (1, 2, 4)


def build_hypergraph(n: int = N_VERTICES, seed: int = 9) -> Hypergraph:
    """Deterministic netlist-shaped hypergraph: overlapping 3-pin
    windows (local logic), 20-pin block nets (buses/clock regions),
    and n/20 random 2-pin long wires; vertex weights 1..3."""
    rng = np.random.default_rng(seed)
    weights = rng.integers(1, 4, n).tolist()
    edges = []
    for i in range(0, n - 3, 2):
        edges.append([i, i + 1, i + 2])
    for s in range(0, n, 20):
        edges.append(list(range(s, min(s + 20, n))))
    for a, b in rng.integers(0, n, size=(n // 20, 2)).tolist():
        if a != b:
            edges.append([a, b])
    return Hypergraph.from_edges(weights, edges)


def test_multilevel_vs_direct_at_scale(benchmark):
    hg = build_hypergraph()

    def sweep():
        runs = {}
        for workers in WORKER_COUNTS:
            rec = MetricsRecorder()
            runs[workers] = (
                multilevel_kway_partition(hg, K, B, seed=CFG.seed,
                                          workers=workers, recorder=rec),
                rec,
            )
        direct_rec = MetricsRecorder()
        direct = direct_kway_partition(hg, K, B, seed=CFG.seed,
                                       recorder=direct_rec)
        return runs, direct, direct_rec

    runs, direct, direct_rec = benchmark.pedantic(sweep, rounds=1,
                                                  iterations=1)

    ml, ml_rec = runs[1]
    digests = {
        w: hashlib.sha256(r.assignment.tobytes()).hexdigest()
        for w, (r, _) in runs.items()
    }
    rows = []
    host_timings = {}
    for workers in WORKER_COUNTS:
        result, rec = runs[workers]
        wall = sum(rec.host_timings().values())
        host_timings[f"multilevel.workers={workers}"] = wall
        rows.append([
            f"multilevel w={workers}", result.cut_size, result.balanced,
            result.levels, result.coarse_vertices, result.initial_cut,
            digests[workers][:12],
        ])
    host_timings["direct"] = sum(direct_rec.host_timings().values())
    rows.append([
        "direct", direct.cut_size, direct.balanced, direct.levels,
        direct.coarse_vertices, direct.initial_cut,
        hashlib.sha256(direct.assignment.tobytes()).hexdigest()[:12],
    ])

    headers = ["engine", "cut", "balanced", "levels", "coarsest",
               "initial cut", "sha256[:12]"]
    counters = ml_rec.as_counters()
    emit(
        "multilevel",
        format_table(
            headers, rows,
            title=(
                f"Multilevel vs direct k-way "
                f"({hg.num_vertices} vertices, {hg.num_edges} edges; "
                f"k={K}, b={B}; host cores: {os.cpu_count()})"
            ),
        ),
        rows=table_rows(headers, rows),
        params={"circuit": "synthetic-100k", "vertices": hg.num_vertices,
                "edges": hg.num_edges, "k": K, "b": B,
                "host_cpus": os.cpu_count() or 1},
        counters={
            "part.cut_size": ml.cut_size,
            "part.balanced": int(ml.balanced),
            "part.ml.levels": counters["part.ml.levels"],
            "part.ml.coarse_vertices": counters["part.ml.coarse_vertices"],
            "part.ml.initial_cut": counters["part.ml.initial_cut"],
            "part.ml.refine_rounds": counters["part.ml.refine_rounds"],
            "part.ml.uncoarsen_gain": counters["part.ml.uncoarsen_gain"],
        },
        host_timings=host_timings,
    )

    # oracle: the reported cut is the recomputed cut
    assert ml.cut_size == hyperedge_cut(hg, ml.assignment)

    # determinism gate: identical partition bytes at any worker count
    assert len(set(digests.values())) == 1, digests

    # quality gate: beat or match direct multiway at equal balance
    assert ml.balanced and direct.balanced
    assert ml.cut_size <= direct.cut_size, (
        f"multilevel cut {ml.cut_size} lost to direct {direct.cut_size}"
    )
