"""Figure 7 — rollback count vs machines during pre-simulation, per b.

Paper: up to ~1.8e4 rollbacks, growing with machines and shrinking as b
relaxes — "relaxing the load balancing constraint results in fewer
messages and rollbacks", the paper's closing evidence that
pre-simulation must arbitrate the communication/balance trade-off.
"""

from _shared import CFG, emit, presim_study

from repro.bench import fig6_fig7_messages_rollbacks, format_series


def test_fig7_rollbacks(benchmark):
    def compute():
        return fig6_fig7_messages_rollbacks(presim_study())

    _, rollbacks, ks = benchmark.pedantic(compute, rounds=1, iterations=1)
    series = format_series(
        "machines",
        ks,
        {f"b={b}": counts for b, counts in sorted(rollbacks.items())},
        title=f"Figure 7: rollbacks during pre-simulation ({CFG.circuit})",
    )
    emit(
        "fig7_rollbacks",
        series,
        series={"machines": list(ks),
                **{f"b={b}": counts for b, counts in sorted(rollbacks.items())}},
    )
    bs = sorted(rollbacks)
    k_idx = len(ks) - 1
    # the tightest balance rolls back at least as much as the loosest
    assert rollbacks[bs[0]][k_idx] >= rollbacks[bs[-1]][k_idx]
