"""Paper-scale partitioning study: the 388-instance decoder.

`viterbi-paper` reproduces the RPI netlist's *module structure* exactly
(388 top-level instances; ~93k gates vs the paper's 1.2M — gate count
only stretches wall clock).  Simulating it is out of laptop budget, but
partitioning is not: this benchmark runs Table 1 vs Table 2 at the
paper's module count, the closest structural match to the original
experiment in this reproduction.
"""

from _shared import CFG, emit, table_rows

from repro.baselines import multilevel_partition
from repro.bench import format_table
from repro.circuits import load_circuit
from repro.core import design_driven_partition
from repro.hypergraph import flat_hypergraph


def test_paper_scale_partitioning(benchmark):
    netlist = load_circuit("viterbi-paper")
    flat = flat_hypergraph(netlist)

    def sweep():
        rows = []
        for k in (2, 3, 4):
            for b in (2.5, 10.0):
                d = design_driven_partition(netlist, k=k, b=b, seed=CFG.seed)
                ml = multilevel_partition(flat, k, b, seed=CFG.seed)
                rows.append(
                    [k, b, d.cut_size, d.balanced, d.flatten_steps,
                     ml.cut_size,
                     f"{ml.cut_size / max(d.cut_size, 1):.1f}x"]
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    headers = ["k", "b", "design cut", "balanced", "flattened",
               "multilevel cut", "ratio"]
    emit(
        "paper_scale",
        format_table(
            headers,
            rows,
            title=(
                f"Paper-scale study ({netlist.num_gates} gates, "
                f"{len(netlist.hierarchy.children)} instances — the RPI "
                f"netlist's module count)"
            ),
        ),
        rows=table_rows(headers, rows),
        params={"circuit": "viterbi-paper",
                "num_gates": netlist.num_gates,
                "num_instances": len(netlist.hierarchy.children)},
    )
    # the paper's headline at the paper's module count: the design
    # algorithm is never worse (ties happen where the channel structure
    # hands both the natural split) and wins by a wide factor at k=4
    assert all(r[2] <= r[5] for r in rows)
    assert all(r[3] for r in rows), "design-driven must meet Formula 1"
    ratios = [r[5] / max(r[2], 1) for r in rows]
    assert max(ratios) >= 3.0, f"expected a multi-x gap somewhere: {ratios}"