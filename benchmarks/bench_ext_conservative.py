"""Extension — optimistic (Time Warp) vs conservative simulation.

DVS is optimistic; the classic PDES question is what that optimism
buys.  Two conservative numbers are reported:

* **idealized bound** — the engine's conservative mode executes only at
  the exact global safe time, with global knowledge standing in for any
  synchronization protocol.  Zero rollbacks, zero protocol overhead: an
  upper bound no real conservative implementation reaches.  Time Warp
  lands within a few percent of it (the rollbacks it pays roughly buy
  back the latency it hides).
* **CMB estimate** — what an actual null-message (Chandy–Misra–Bryant)
  protocol would add: with gate-level lookahead of ONE tick, every
  inter-machine channel needs on the order of one null message per tick
  of virtual time.  That flood is costed at ``msg_cpu_overhead`` each
  and added to the idealized wall time — this is precisely why
  gate-level simulators (DVS included) went optimistic.
"""

from _shared import CFG, emit, table_rows

from repro.bench import format_table
from repro.circuits import load_circuit, random_vectors
from repro.core import design_driven_partition
from repro.sim import ClusterSpec, TimeWarpConfig, compile_circuit, run_partitioned


def _inter_machine_channels(circuit, clusters, machines) -> int:
    """Directed machine-to-machine LP channels (null-message carriers)."""
    lp_of_gate = {}
    for lid, cl in enumerate(clusters):
        for g in cl:
            lp_of_gate[g] = lid
    channels = set()
    for lid, cl in enumerate(clusters):
        for g in cl:
            out = int(circuit.gate_output[g])
            for s in circuit.net_sinks[out]:
                dst = lp_of_gate[s]
                if machines[dst] != machines[lid]:
                    channels.add((lid, dst))
    return len(channels)


def test_optimistic_vs_conservative(benchmark):
    netlist = load_circuit(CFG.circuit)
    circuit = compile_circuit(netlist)
    events = random_vectors(netlist, CFG.presim_vectors, seed=CFG.seed)

    def sweep():
        rows = []
        for k in (2, 3, 4):
            part = design_driven_partition(netlist, k=k, b=10.0, seed=CFG.seed)
            clusters, machines = part.to_simulation()
            spec = ClusterSpec(num_machines=k)
            reps = {}
            for conservative in (False, True):
                reps[conservative] = run_partitioned(
                    circuit, clusters, machines, events, spec,
                    TimeWarpConfig(conservative=conservative),
                )
            tw, cons = reps[False], reps[True]
            assert cons.rollbacks == 0
            # CMB null-message flood estimate: one null per channel per
            # virtual tick (lookahead = 1), CPU cost amortized over k
            channels = _inter_machine_channels(circuit, clusters, machines)
            end_time = tw.seq_stats.end_time
            nulls = channels * end_time
            cmb_wall = cons.parallel_wall_time + nulls * spec.msg_cpu_overhead / k
            cmb_speedup = cons.sequential_wall_time / cmb_wall
            rows.append(
                [k, f"{tw.speedup:.2f}", tw.rollbacks,
                 f"{cons.speedup:.2f}", f"{nulls/1e6:.1f}M",
                 f"{cmb_speedup:.2f}"]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    headers = ["k", "TW speedup", "TW rollbacks", "ideal-cons speedup",
               "est. null msgs", "CMB-est speedup"]
    emit(
        "ext_conservative",
        format_table(
            headers,
            rows,
            title=(
                f"Extension: Time Warp vs conservative "
                f"(b=10, {CFG.circuit})"
            ),
        ),
        rows=table_rows(headers, rows),
        params={"b": 10.0},
    )
    for k, tw_s, _, cons_s, _, cmb_s in rows:
        # within a few percent of the unreachable idealized bound...
        assert float(tw_s) >= float(cons_s) * 0.93, (k, tw_s, cons_s)
        # ...and far above any realizable null-message protocol
        assert float(tw_s) > float(cmb_s) * 2, (k, tw_s, cmb_s)
