"""Scale ladder: build + partition from 10k to 1.2M gates.

The paper's circuit is a 1.2M-gate decoder; everything below the
benchmark suite's 100k studies is comfortable, but the million-gate
rung only works because the whole pipeline is array-native end to end:
the streamed generators (:mod:`repro.circuits.stream`) emit
:class:`NetlistCSR` directly (no Verilog text, no parse, no object
netlist), the chunked hypergraph build keeps peak RSS at O(pins) with
a small constant, and the multilevel + batch-refine partitioner runs
on the int64 substrate throughout.

Each rung runs in a fresh subprocess so its peak RSS (VmHWM is a
process-lifetime high-water mark) is its own, sampled with the PR 7
:class:`~repro.obs.sampler.ResourceSampler`.  Two structural gates are
asserted:

* **bytes-per-pin budget** — build-phase RSS growth over the
  interpreter baseline, divided by pin count, stays under
  ``BUILD_BYTES_PER_PIN`` on every rung large enough for the ratio to
  be meaningful (the O(pins) claim, made load-bearing);
* **ladder completes** — every rung partitions to a balanced k-way
  assignment.

Deterministic columns (gates/nets/pins/edges/cut/balanced) land in the
metrics rows and gate byte-for-byte under ``make_experiments_md.py
--check --baseline``; walls and RSS are host facts and live in the
quarantined ``host_timings`` channel.  ``--rungs N`` caps the ladder
(``tools/run_checks.py`` runs the 10k smoke rung in tier-1 time); a
capped run prints and asserts but does not overwrite the committed
full-ladder document.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

#: (registry name, k) per rung, smallest first — the ladder
RUNGS: list[tuple[str, int]] = [
    ("viterbi-s10k", 8),
    ("viterbi-s100k", 8),
    ("noc-scale", 8),
    ("memctrl-scale", 8),
    ("viterbi-xl", 8),
]

B = 5.0
SEED = 1

#: build-phase RSS growth per pin (bytes), asserted per rung.  The CSR
#: itself is ~28 B/pin (int64 pin + amortized ptr/output/code), the
#: hypergraph adds pins + the transposed vertex index and a sort
#: scratch; 160 B leaves ~2x headroom over the measured ~70-90 B.
BUILD_BYTES_PER_PIN = 160

#: rungs below this many pins are interpreter-noise dominated — the
#: budget gate applies above it
MIN_PINS_FOR_BUDGET = 1_000_000

#: recorder phases reported per rung as the partition wall breakdown
#: (quarantined with the other host walls; asserted present in smoke
#: mode by tools/run_checks.py's --rungs 1 step)
PARTITION_PHASES = (
    "partition.coarsen",
    "partition.initial",
    "partition.uncoarsen",
    "partition.batch_refine",
)


def run_rung(name: str, k: int) -> dict:
    """One ladder rung, measured in a fresh interpreter (clean VmHWM)."""
    proc = subprocess.run(
        [sys.executable, __file__, "--child", name, str(k)],
        capture_output=True, text=True, check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"rung {name} failed:\n{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout.splitlines()[-1])


def child(name: str, k: int) -> None:
    """Build, hypergraph, partition; print one JSON result line."""
    import time

    from repro.circuits import load_stream_circuit
    from repro.core import multilevel_kway_partition
    from repro.hypergraph.build import streamed_flat_hypergraph
    from repro.obs import MetricsRecorder
    from repro.obs.sampler import ResourceSampler, _read_rss_kb

    baseline_kb = _read_rss_kb()
    rec = MetricsRecorder()
    with ResourceSampler() as sampler:
        t0 = time.perf_counter()
        csr = load_stream_circuit(name, recorder=rec)
        t1 = time.perf_counter()
        hg = streamed_flat_hypergraph(csr, recorder=rec)
        t2 = time.perf_counter()
        sampler._sample_once()
        build_peak_kb = sampler.peak_rss_kb
        result = multilevel_kway_partition(
            hg, k, B, seed=SEED, workers=1, recorder=rec, refiner="batch"
        )
        t3 = time.perf_counter()
    phase_walls = rec.host_timings()
    print(json.dumps({
        "rung": name,
        "k": k,
        "gates": int(csr.num_gates),
        "nets": int(csr.num_nets),
        "pins": int(csr.num_pins),
        "edges": int(hg.num_edges),
        "cut": int(result.cut_size),
        "balanced": bool(result.balanced),
        "build_s": t1 - t0,
        "hypergraph_s": t2 - t1,
        "partition_s": t3 - t2,
        "baseline_rss_kb": baseline_kb,
        "build_peak_rss_kb": build_peak_kb,
        "peak_rss_kb": sampler.peak_rss_kb,
        # per-phase partition wall breakdown (recorder phases) — the
        # coarsen/refine split the vectorization work is gated on
        "phase_s": {
            phase: phase_walls.get(phase, 0.0)
            for phase in PARTITION_PHASES
        },
        "counters": {
            key: int(val) for key, val in sorted(rec.counters.items())
            if key.startswith(("circ.", "part.build."))
        },
    }))


def build_bytes_per_pin(r: dict) -> float:
    return (r["build_peak_rss_kb"] - r["baseline_rss_kb"]) * 1024 / r["pins"]


def assert_gates(results: list[dict]) -> None:
    for r in results:
        assert r["balanced"], f"rung {r['rung']} missed Formula 1 balance"
        assert r["cut"] > 0, f"rung {r['rung']} produced a trivial cut"
        missing = [p for p in PARTITION_PHASES if p not in r["phase_s"]]
        assert not missing, (
            f"rung {r['rung']} phase breakdown missing {missing}"
        )
        if r["pins"] >= MIN_PINS_FOR_BUDGET:
            bpp = build_bytes_per_pin(r)
            assert bpp <= BUILD_BYTES_PER_PIN, (
                f"rung {r['rung']} build overhead {bpp:.0f} B/pin exceeds "
                f"the {BUILD_BYTES_PER_PIN} B/pin budget"
            )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rungs", type=int, default=len(RUNGS),
                        help="run only the first N rungs (smoke mode)")
    parser.add_argument("--child", nargs=2, metavar=("NAME", "K"),
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.child:
        child(args.child[0], int(args.child[1]))
        return 0

    sys.path.insert(0, str(Path(__file__).parent))
    from _shared import emit, table_rows

    from repro.bench import format_table

    selected = RUNGS[: max(1, args.rungs)]
    results = [run_rung(name, k) for name, k in selected]
    assert_gates(results)

    headers = ["rung", "gates", "nets", "pins", "edges", "k", "cut",
               "balanced"]
    rows = [
        [r["rung"], r["gates"], r["nets"], r["pins"], r["edges"],
         r["k"], r["cut"], r["balanced"]]
        for r in results
    ]
    text = format_table(
        headers, rows,
        title=(f"Scale ladder (b={B}, seed={SEED}, multilevel + batch "
               f"refiner, one fresh process per rung)"),
    )
    walls = "\n".join(
        f"  {r['rung']:>14}: build {r['build_s']:.1f}s + hg "
        f"{r['hypergraph_s']:.1f}s + partition {r['partition_s']:.1f}s "
        f"(coarsen {r['phase_s']['partition.coarsen']:.1f}s, "
        f"refine {r['phase_s']['partition.batch_refine']:.1f}s), "
        f"peak RSS {r['peak_rss_kb'] / 1024:.0f} MB "
        f"({build_bytes_per_pin(r):.0f} B/pin build overhead)"
        for r in results
    )
    text += f"\nhost walls (quarantined):\n{walls}"

    if len(selected) < len(RUNGS):
        # smoke mode: print + gate only — never overwrite the
        # committed full-ladder document with a partial one
        print(text)
        print(f"(smoke mode: {len(selected)}/{len(RUNGS)} rungs, "
              f"document not written)")
        return 0

    host_timings = {}
    counters: dict[str, int] = {}
    for r in results:
        host_timings[f"rung.{r['rung']}.build_s"] = r["build_s"]
        host_timings[f"rung.{r['rung']}.hypergraph_s"] = r["hypergraph_s"]
        host_timings[f"rung.{r['rung']}.partition_s"] = r["partition_s"]
        host_timings[f"rung.{r['rung']}.peak_rss_kb"] = r["peak_rss_kb"]
        for phase, wall in r["phase_s"].items():
            host_timings[f"rung.{r['rung']}.{phase}_s"] = wall
        for key, val in r["counters"].items():
            counters[key] = counters.get(key, 0) + val
    emit(
        "scale_ladder",
        text,
        params={"circuit": "scale-ladder", "b": B, "seed": SEED,
                "rungs": len(results),
                "build_bytes_per_pin_budget": BUILD_BYTES_PER_PIN},
        counters=counters,
        rows=table_rows(headers, rows),
        host_timings=host_timings,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
