"""Partition-core speed study: vectorized core vs pre-PR bookkeeping.

The vectorized partition core (docs/performance.md) claims a large
wall-clock win with **bit-identical** refinement decisions.  This
benchmark runs one exhaustive refinement sweep — per tournament round:
snapshot, score every pair's estimated gain, FM-refine the round's
pairs — on a ~50k-vertex circuit-shaped hypergraph through both the
current core and :class:`repro.bench.LegacyPartitionState` (the
pre-optimization implementation kept runnable for exactly this
purpose).

``speed_study`` itself asserts the structural outcomes (cut trajectory,
realized gain, moves, passes, pairing estimates) are identical, so the
wall ratio is a pure like-for-like measurement.  Structural quantities
land in the metrics rows/counters and gate deterministically under
``make_experiments_md.py --check``; the walls and their ratio are
host-dependent and live in the quarantined ``host_timings`` channel.

The wall-clock assertion uses a noise-tolerant floor (3x) below the
typically measured ~5x so a loaded host does not flake the suite; the
measured ratio is always visible in the emitted table.
"""

from _shared import emit, table_rows

from repro.bench import format_table, speed_study

NUM_VERTICES = 50_000
NUM_EDGES = 65_000
K = 8
B = 10.0
SEED = 0
MAX_PASSES = 2

#: lower bound on the wall-clock ratio asserted by the test — well
#: under the ~5x typically measured so host noise cannot flake it
MIN_SPEEDUP = 3.0


def test_partition_core_speed(benchmark):
    fast, slow = benchmark.pedantic(
        lambda: speed_study(
            NUM_VERTICES, NUM_EDGES, k=K, seed=SEED, b=B,
            max_passes=MAX_PASSES,
        ),
        rounds=1, iterations=1,
    )

    ratio = slow.host_seconds / fast.host_seconds
    headers = ["impl", "cut before", "cut after", "connectivity", "gain",
               "moves", "passes", "estimates", "wall (s)", "speedup"]
    rows = [
        [s.impl, s.cut_before, s.cut_after, s.connectivity_after, s.gain,
         s.moves, s.passes, s.estimate_total, f"{s.host_seconds:.2f}",
         f"{slow.host_seconds / s.host_seconds:.2f}x"]
        for s in (fast, slow)
    ]
    emit(
        "partition_speed",
        format_table(
            headers,
            rows,
            title=(
                f"Partition-core speed study "
                f"({NUM_VERTICES} vertices, {NUM_EDGES} edges; "
                f"k={K}, b={B}, seed={SEED}, max_passes={MAX_PASSES}; "
                f"exhaustive sweep: snapshots + all-pair estimates + FM)"
            ),
        ),
        # wall/speedup columns are host-dependent: the JSON rows keep
        # only the structural fields, the walls go to host_timings
        rows=[
            {k: v for k, v in row.items() if k not in ("wall_s", "speedup")}
            for row in table_rows(headers, rows)
        ],
        params={"num_vertices": NUM_VERTICES, "num_edges": NUM_EDGES,
                "k": K, "b": B, "sweep_seed": SEED,
                "max_passes": MAX_PASSES},
        counters={
            "part.cut_size": fast.cut_after,
            "part.fm.gain": fast.gain,
            "part.fm.moves": fast.moves,
            "part.fm.passes": fast.passes,
            "part.core.lambda_hits": fast.lambda_hits,
            "part.core.gain_batches": fast.gain_batches,
            "part.core.gain_batch_vertices": fast.gain_batch_vertices,
            "part.core.boundary_batches": fast.boundary_batches,
        },
        host_timings={
            "part.sweep.vectorized": fast.host_seconds,
            "part.sweep.legacy": slow.host_seconds,
            "part.sweep.speedup": ratio,
        },
    )

    # structural parity already asserted inside speed_study; pin the
    # study actually exercised the batch machinery
    assert fast.lambda_hits > 0
    assert fast.gain_batches > 0
    assert fast.boundary_batches > 0
    # refinement did real work on this workload
    assert fast.cut_after < fast.cut_before
    # the headline: the vectorized core is multiple times faster on the
    # identical sweep (floor is noise-tolerant; measured ratio ~5x)
    assert ratio >= MIN_SPEEDUP, (
        f"vectorized core only {ratio:.2f}x faster than legacy "
        f"(floor {MIN_SPEEDUP}x)"
    )
