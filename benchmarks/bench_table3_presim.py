"""Table 3 — pre-simulation time and speedup for every (k, b).

Paper: 10 000 random vectors, sequential time 38.93 s; best speedups
1.65 / 1.81 / 1.96 for k = 2 / 3 / 4, with b=2.5 always worst (its
over-tight balance shreds the hierarchy and communication dominates).
"""

from _shared import CFG, emit, presim_study

from repro.bench import (
    PAPER_TABLE3,
    format_table,
    shape_check_counters,
    shape_checks_speedup,
)


def test_table3_presim(benchmark):
    study = benchmark.pedantic(presim_study, rounds=1, iterations=1)
    seq_wall = study.points[0].report.sequential_wall_time
    table = format_table(
        ["k", "b", "cut", "sim time (s)", "speedup", "paper time", "paper speedup"],
        [
            [p.k, p.b, p.cut_size, f"{p.sim_time:.4f}", f"{p.speedup:.2f}",
             PAPER_TABLE3[(p.k, p.b)][0], PAPER_TABLE3[(p.k, p.b)][1]]
            for p in study.points
        ],
        title=(
            f"Table 3: pre-simulation over (k, b) ({CFG.circuit}, "
            f"{CFG.presim_vectors} vectors, modeled seq time {seq_wall:.4f}s; "
            f"paper: 10k vectors, 38.93s)"
        ),
    )
    speedups = {(p.k, p.b): p.speedup for p in study.points}
    checks = shape_checks_speedup(speedups)
    emit(
        "table3_presim",
        "\n".join([table, ""] + [str(c) for c in checks]),
        rows=[
            {"k": p.k, "b": p.b, "cut_size": p.cut_size,
             "sim_time": p.sim_time, "speedup": p.speedup}
            for p in study.points
        ],
        counters={"seq.wall_time": seq_wall, **shape_check_counters(checks)},
    )
    assert all(c.passed for c in checks), [str(c) for c in checks]
