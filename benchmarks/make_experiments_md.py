"""Assemble EXPERIMENTS.md from the benchmark outputs.

Run the benchmark suite first (it writes ``benchmarks/out/*.txt`` and
the machine-readable ``benchmarks/out/BENCH_*.json`` metrics documents),
then::

    python benchmarks/make_experiments_md.py            # regenerate
    python benchmarks/make_experiments_md.py --check    # CI freshness gate

``--check`` rebuilds the document in memory, validates every metrics
JSON against the schema (``repro.obs.validate_metrics``), and exits
non-zero if the committed EXPERIMENTS.md differs from what the current
outputs would produce — i.e. someone changed a benchmark without
regenerating the document.

``--check --baseline DIR`` additionally runs the regression gate
(``repro.obs.diffing``): every ``BENCH_*.json`` under ``benchmarks/out``
is compared against its same-named counterpart in ``DIR`` and the check
exits non-zero when any registered metric moved past its threshold in
the bad direction (>10 % more ``tw.rollbacks``, a larger
``part.cut_size``, a smaller ``tw.speedup``, ...).  The intended CI
flow — the checked-in documents are the baseline::

    git stash -- benchmarks/out && cp -r benchmarks/out /tmp/baseline \\
        && git stash pop          # or: git worktree / a clean checkout
    pytest benchmarks/ --benchmark-only -s        # fresh run
    python benchmarks/make_experiments_md.py --check --baseline /tmp/baseline

The document records paper-vs-measured for every table and figure plus
the ablations, with the scaling context needed to read the comparison.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

try:
    from repro.obs import MetricsError, gate_directories, read_metrics
except ImportError:  # direct script run without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).parent.parent / "src"))
    from repro.obs import MetricsError, gate_directories, read_metrics

OUT = Path(__file__).parent / "out"
TARGET = Path(__file__).parent.parent / "EXPERIMENTS.md"

HEADER = """\
# EXPERIMENTS — paper vs measured

Reproduction of every table and figure in the evaluation section of
*"A Multiway Partitioning Algorithm for Parallel Gate Level Verilog
Simulation"* (Li & Tropper, ICPP 2008).  Regenerate everything with::

    pytest benchmarks/ --benchmark-only -s
    python benchmarks/make_experiments_md.py

## Scaling context (read this first)

| | paper | this reproduction |
|---|---|---|
| circuit | RPI synthesized Viterbi decoder, 388 modules, ~1.2 M gates | synthetic hierarchical Viterbi (`viterbi-single`): 1 decoder, 40 top-level instances, 4 322 gates (`viterbi-paper` reproduces the 388-instance shape for partition-only studies) |
| platform | 4x AMD Athlon 1 GHz / 512 MB, 1 Gb Ethernet, MPICH, DVS+OOCTW | deterministic virtual cluster: 2 µs/event, 40 µs/message sender CPU, 120 µs latency; Clustered Time Warp kernel |
| vectors | 10 000 pre-sim / 1 000 000 full | 60 pre-sim / 600 full (same 10:1 ratio family, laptop-scale) |
| timing | wall-clock seconds on hardware | modeled seconds (bit-reproducible) |

Absolute cut sizes scale with circuit size and absolute times with the
cost model; the reproduction targets are the paper's *qualitative
results*: who wins, what trends in b and k, where the optimum sits.
Each section below embeds the mechanical shape checks
(`repro.bench.shape_checks_*`) that encode those claims.

Every parallel run in these experiments is verified against the
sequential oracle: identical final net values and identical committed
event counts.
"""

SECTIONS = [
    ("Table 1 — design-driven cut size", "table1_cutsize_design",
     "Paper: cut falls ~5x from b=2.5 to b=15 at every k (2428 -> 513 at "
     "k=2) and rises with k. Measured: same trends; the 'flattened' column "
     "shows where the balance constraint forced super-gate flattening."),
    ("Table 2 — hMetis-style multilevel on the flattened netlist",
     "table2_cutsize_hmetis",
     "Paper: hMetis sits at ~2670-3195, nearly flat in b, ~4.5x above "
     "Table 1 everywhere.  Measured — an honest reproduction caveat: "
     "our from-scratch multilevel baseline (with standard large-net "
     "handling) is STRONGER than the paper's reported hMetis numbers "
     "and ties the hierarchy-aware cut at this 4k-gate scale.  The "
     "claims that survive a strong baseline, asserted below: the "
     "design-driven cut is competitive everywhere, wins in aggregate "
     "at k=4, always meets Formula 1 (the baseline's recursive "
     "UBfactors compound past it at tight b), partitions a 40-vertex "
     "hypergraph instead of a 4000-vertex one, and pulls decisively "
     "ahead at the paper's module count (the paper-scale section: 25x "
     "at k=4 on 388 instances)."),
    ("Table 3 — pre-simulation time and speedup per (k, b)",
     "table3_presim",
     "Paper: b=2.5 is always worst (0.44-0.69 speedup, slower than "
     "sequential); the best point is k=4 at 1.96. Measured: b=2.5 is the "
     "worst column at every k; the per-k best speedups rise with k to the "
     "same ~1.9-2.0 region."),
    ("Table 4 — best partition per machine count", "table4_best",
     "Paper winners: (k=2, b=12.5), (k=3, b=10), (k=4, b=7.5). Measured "
     "winners likewise sit at intermediate b — never the tightest "
     "balance, confirming that minimum cut-size alone does not give the "
     "best performance (the paper's §4.3 point)."),
    ("Table 5 — full simulation on the winners", "table5_full_sim",
     "Paper: full-run speedups 1.65/1.79/1.91, slightly below the "
     "pre-simulation predictions. Measured: the same close tracking of "
     "presim vs full speedup, and the same weak growth with k."),
    ("Figure 5 — simulation time vs machines", "fig5_sim_time",
     "Paper: monotone decrease with visibly diminishing returns from "
     "k=2 to k=4 (hierarchy destroyed as the circuit is divided more "
     "finely). Measured: same curve shape."),
    ("Figure 6 — messages vs machines (per b)", "fig6_messages",
     "Paper: message counts grow with machine count and shrink as b "
     "relaxes. Measured: same ordering; the tight-b series dominates."),
    ("Figure 7 — rollbacks vs machines (per b)", "fig7_rollbacks",
     "Paper: rollbacks up to ~1.8e4, growing with machines, shrinking "
     "with b. Measured: same shape at reproduction scale."),
    ("Heuristic pre-simulation (Figure 3 / §3.4)", "heuristic_presim",
     "Paper: two pre-simulation runs sufficed for their circuit; the "
     "heuristic can be trapped in local minima. Measured: runs saved and "
     "the speedup gap vs the brute-force envelope."),
    ("Ablation — pairing strategies (§3.1.1)", "ablation_pairing",
     "The paper lists random/exhaustive/cut/gain pairing without "
     "numbers; measured: exhaustive pairing is never worse than random, "
     "at higher cost."),
    ("Ablation — cone vs random initial partition (§3.3)",
     "ablation_initial",
     "Cone partitioning seeds FM with input-to-output concurrency; "
     "measured against a random initial assignment after identical "
     "refinement."),
    ("Ablation — super-gate flattening (§3.2)", "ablation_flattening",
     "With flattening disabled, tight b is simply infeasible at module "
     "granularity; enabled, the algorithm trades cut for feasibility."),
    ("Ablation — lazy vs aggressive cancellation (kernel)",
     "ablation_cancellation",
     "Not in the paper: on a deterministic cluster, lazy cancellation "
     "suppresses identical re-sends; committed work is identical by "
     "construction."),
    ("Paper-scale partitioning (388 instances)", "paper_scale",
     "The viterbi-paper generator reproduces the RPI netlist's module "
     "count exactly (388 top-level instances, ~93k gates).  Partitioning "
     "at that structure — the closest match to the original experiment "
     "this reproduction can run — shows the same multi-x cut advantage."),
    ("Extension — deterministic parallel refinement", "parallel_refine",
     "Not in the paper: the pairwise-refinement engine fans each "
     "tournament round's disjoint pairs out over worker processes "
     "(docs/parallelism.md).  Measured at paper scale (k=16, "
     "exhaustive pairing): the partition bytes, cut and balance are "
     "identical at every worker count — worker count is a wall-time "
     "knob only.  The deterministic 'ideal speedup' column is the "
     "structural bound (tasks / critical-path slots); measured walls "
     "live in the quarantined host_timings channel and depend on how "
     "many cores the host actually has."),
    ("Extension — vectorized partition-core speed study", "partition_speed",
     "Not in the paper: the λ-cached, batch-gain partition core against "
     "the pre-optimization bookkeeping (kept runnable as "
     "LegacyPartitionState) on an identical ~50k-vertex exhaustive "
     "refinement sweep.  The structural columns — cut trajectory, "
     "realized gain, moves, passes, pairing estimates — are asserted "
     "identical between the two implementations, so the wall ratio is "
     "a pure like-for-like measurement; walls live in the quarantined "
     "host_timings channel.  Measured: ~5x on the benchmark host."),
    ("Extension — vectorized simulation-substrate speed study", "sim_speed",
     "Not in the paper: the vectorized gate-eval kernel plus the "
     "rewritten Time Warp hot path (list mirrors, inline flip-flop "
     "sampling, cached checkpoint accounting, memoized machine "
     "scheduling) against the complete pre-optimization simulation "
     "stack (kept runnable as LegacyClusterLP / "
     "LegacySequentialSimulator / LegacyTimeWarpEngine) on an identical "
     "pre-simulation (k, b) sweep.  Every structural column — per-point "
     "committed events, messages, rollbacks, modeled walls to the bit, "
     "the chosen best (k, b) and the sha256 digest over the rows — is "
     "asserted identical between the stacks, so the wall ratio is a "
     "pure like-for-like measurement; walls live in the quarantined "
     "host_timings channel.  Measured: ~4.5-5x on the benchmark host."),
    ("Extension — multilevel vs direct k-way at scale", "multilevel",
     "Not in the paper: the production multilevel engine "
     "(docs/multilevel.md) against a direct k-way comparator with the "
     "identical LPT seeding and FM budget, on a deterministic "
     "100k-vertex netlist-shaped hypergraph.  Two gates are asserted: "
     "the multilevel cut beats or matches direct at equal Formula-1 "
     "balance, and the assignment sha256 is identical at 1/2/4 "
     "refinement workers (the PR 3 determinism contract, inherited "
     "level by level).  Walls live in the quarantined host_timings "
     "channel."),
    ("Extension — batch data-parallel refinement vs heap FM",
     "batch_refine",
     "Not in the paper: the whole-boundary batch refiner "
     "(docs/refinement.md, `--refiner batch`) against heap FM, both "
     "driven by the multilevel engine on the same 100k-vertex "
     "hypergraph as the multilevel extension.  Three gates are "
     "asserted: the batch cut lands within 5% of FM's at equal "
     "Formula-1 balance, the batch refiner's synchronous round count "
     "stays an order of magnitude below FM's sequential move count "
     "(the structural speedup — vector width replaces move-by-move "
     "dependency), and the batch assignment sha256 is identical at "
     "1/2/4 workers.  Walls live in the quarantined host_timings "
     "channel."),
    ("Extension — million-gate scale ladder", "scale_ladder",
     "Not in the paper's experiments but its premise: the original "
     "circuit is ~1.2M gates.  The ladder builds, hypergraphs and "
     "partitions five streamed rungs (10k -> 100k Viterbi, ~119k NoC "
     "fabric, ~124k memory controller, 1.2M Viterbi XL) entirely "
     "array-native — no Verilog text, no object netlist — one fresh "
     "process per rung so peak RSS is per-rung truth.  Two gates are "
     "asserted: build RSS overhead stays under 160 bytes per pin on "
     "every million-pin rung (the O(pins) claim), and every rung "
     "reaches a balanced k=8 partition.  Deterministic columns gate "
     "byte-for-byte; walls and RSS live in the quarantined "
     "host_timings channel.  See docs/performance.md, section 'Scale "
     "ladder'."),
    ("Ablation — direct pairwise vs recursive bipartitioning (§3.1.1)",
     "ablation_direct_vs_recursive",
     "The paper chose the direct algorithm over recursion.  Measured: "
     "recursion only ever undercuts the direct algorithm by violating "
     "Formula 1 (e.g. loads [6, 1066, 308, 16] on the CPU workload); "
     "wherever it stays feasible the direct algorithm matches it."),
    ("Extension — activity-based load metric (the paper's future work)",
     "ext_load_metric",
     "The paper's conclusion names the gate-count load metric as 'not "
     "entirely adequate'; this extension balances profiled gate "
     "activity instead and compares the resulting speedups."),
    ("Extension — dynamic kernel policies",
     "ext_dynamic",
     "Adaptive checkpointing and load-driven LP migration (the paper's "
     "'responsive to changes in processor loads').  Measured: migration "
     "rescues a skewed placement but cannot beat a good static "
     "partition — it balances load while ignoring the communication "
     "affinity the design-driven partitioner optimizes."),
    ("Extension — Time Warp vs conservative simulation",
     "ext_conservative",
     "Why DVS is optimistic: Time Warp lands within a few percent of an "
     "idealized zero-overhead conservative bound, while a realizable "
     "null-message protocol at one-tick lookahead would drown in null "
     "traffic (estimated column) — speedups below 0.5."),
    ("Extension — second workload (the paper's planned Sparc design)",
     "second_workload",
     "The paper planned to repeat the study on a synthesized CPU.  "
     "Measured on the CPU-shaped generator: the design-driven "
     "partitioner is the only one that always meets Formula 1, ties the "
     "flat baseline at k=2, and loses ground at k>=3 where the "
     "datapath's natural min-cut runs along bit slices across module "
     "boundaries — an honest limit of hierarchy-aware partitioning."),
]


def _metrics_note(stem: str, errors: list[str]) -> str | None:
    """One deterministic line describing a section's BENCH JSON, or
    ``None`` when the benchmark emitted no metrics document."""
    path = OUT / f"BENCH_{stem}.json"
    if not path.exists():
        return None
    try:
        doc = read_metrics(path)
    except MetricsError as exc:
        errors.append(str(exc))
        return f"*(metrics document `{path.name}` failed validation)*\n"
    bits = [f"schema v{doc['schema_version']}",
            f"{len(doc['counters'])} counters"]
    if "rows" in doc:
        bits.append(f"{len(doc['rows'])} rows")
    if "series" in doc:
        bits.append(f"{len(doc['series'])} series")
    return (f"Machine-readable: `benchmarks/out/{path.name}` "
            f"({', '.join(bits)}).\n")


def build_document(errors: list[str] | None = None) -> tuple[str, list[str]]:
    """Assemble the EXPERIMENTS.md text; returns (text, missing stems)."""
    errors = errors if errors is not None else []
    parts = [HEADER]
    missing = []
    for title, stem, commentary in SECTIONS:
        path = OUT / f"{stem}.txt"
        parts.append(f"\n## {title}\n")
        parts.append(commentary + "\n")
        if path.exists():
            parts.append("```text\n" + path.read_text().rstrip() + "\n```\n")
        else:
            missing.append(stem)
            parts.append("*(benchmark output missing — run the suite first)*\n")
        note = _metrics_note(stem, errors)
        if note is not None:
            parts.append(note)
    return "\n".join(parts), missing


def run_regression_gate(baseline: Path) -> int:
    """Compare every BENCH_*.json in OUT against ``baseline``; 0 if ok."""
    messages, ok = gate_directories(baseline, OUT)
    for line in messages:
        print(line)
    if not ok:
        print(f"error: regression gate failed against baseline {baseline}",
              file=sys.stderr)
        return 1
    print(f"regression gate passed against baseline {baseline}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Assemble EXPERIMENTS.md from benchmarks/out")
    parser.add_argument(
        "--check", action="store_true",
        help="verify EXPERIMENTS.md is fresh instead of rewriting it")
    parser.add_argument(
        "--baseline", type=Path, metavar="DIR", default=None,
        help="with --check: also gate benchmarks/out/BENCH_*.json against "
             "the same-named baseline documents in DIR (repro.obs.diffing)")
    args = parser.parse_args(argv)
    if args.baseline is not None and not args.check:
        parser.error("--baseline requires --check")
    errors: list[str] = []
    text, missing = build_document(errors)
    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        return 1
    if args.check:
        if not TARGET.exists():
            print(f"error: {TARGET} does not exist; run without --check "
                  "to generate it", file=sys.stderr)
            return 1
        if TARGET.read_text() != text:
            print(f"error: {TARGET} is stale — regenerate it with "
                  f"'python {Path(__file__).name}'", file=sys.stderr)
            return 1
        print(f"{TARGET} is up to date")
        if missing:
            print("missing sections:", ", ".join(missing))
        if args.baseline is not None:
            return run_regression_gate(args.baseline)
        return 0
    TARGET.write_text(text)
    print(f"wrote {TARGET}")
    if missing:
        print("missing sections:", ", ".join(missing))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
