"""Table 5 — full-length simulation of each k's pre-simulation winner.

Paper: 1 M vectors, sequential 3639.70 s; speedups 1.65 / 1.79 / 1.91 —
slightly below the pre-simulation predictions, confirming Chamberlain &
Henderson's observation that short pre-simulation is a usable predictor.
"""

from _shared import CFG, emit, full_sim_rows, presim_study, table_rows

from repro.bench import PAPER_SEQ_TIME_FULL, PAPER_TABLE5, format_table


def test_table5_full_sim(benchmark):
    rows, seq_wall = benchmark.pedantic(full_sim_rows, rounds=1, iterations=1)
    best = presim_study().best_per_k()
    out = []
    for r in rows:
        pb, pcut, ptime, pspeed = PAPER_TABLE5[r.k]
        out.append(
            [r.k, r.b, r.cut, f"{r.sim_time:.4f}", f"{r.speedup:.2f}",
             f"{best[r.k].speedup:.2f}", pb, ptime, pspeed]
        )
    headers = ["k", "b*", "cut", "time (s)", "speedup", "presim speedup",
               "paper b*", "paper time", "paper speedup"]
    table = format_table(
        headers,
        out,
        title=(
            f"Table 5: full simulation ({CFG.circuit}, {CFG.full_vectors} vectors, "
            f"modeled seq {seq_wall:.4f}s; paper: 1M vectors, "
            f"{PAPER_SEQ_TIME_FULL}s)"
        ),
    )
    emit(
        "table5_full_sim",
        table,
        rows=table_rows(headers, out),
        counters={"seq.wall_time": seq_wall},
    )
    assert all(r.speedup > 1.0 for r in rows), "winners must beat sequential"
    # speedup grows (weakly) with machine count, as in the paper
    speeds = [r.speedup for r in rows]
    assert speeds == sorted(speeds) or max(speeds) - speeds[-1] < 0.15
