"""Ablation — direct pairwise multiway vs recursive bipartitioning.

Paper §3.1.1 justifies the direct algorithm over recursion.  The
comparison must be read *jointly with the balance constraint*: recursive
bipartitioning (no flattening, per-split windows) can report smaller
cuts by silently violating Formula 1 — on the CPU workload it produces
loads like [6, 1066, 308, 16].  The direct algorithm's flattening loop
is what buys feasibility; its cut is compared like-for-like only where
both results are balanced.
"""

from _shared import CFG, emit, table_rows

from repro.bench import format_table
from repro.circuits import load_circuit
from repro.core import design_driven_partition, recursive_design_driven_partition


def test_direct_vs_recursive(benchmark):
    workloads = [CFG.circuit, "cpu8"]

    def sweep():
        rows = []
        for name in workloads:
            netlist = load_circuit(name)
            for k in (2, 3, 4):
                d = design_driven_partition(netlist, k=k, b=10.0, seed=CFG.seed)
                r = recursive_design_driven_partition(
                    netlist, k=k, b=10.0, seed=CFG.seed
                )
                rows.append(
                    [name, k, d.cut_size, d.balanced, r.cut_size, r.balanced]
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    headers = ["circuit", "k", "direct cut", "balanced", "recursive cut",
               "balanced (rec)"]
    emit(
        "ablation_direct_vs_recursive",
        format_table(
            headers,
            rows,
            title="Ablation: direct pairwise vs recursive bipartitioning (b=10)",
        ),
        rows=table_rows(headers, rows),
        params={"b": 10.0},
    )
    # the direct algorithm always meets Formula 1 on these workloads
    assert all(r[3] for r in rows)
    # recursion must not be both feasible AND clearly better anywhere
    for name, k, d_cut, d_bal, r_cut, r_bal in rows:
        if r_bal:
            assert d_cut <= r_cut * 1.25, (name, k, d_cut, r_cut)
    # and the balance failures it exhibits are the paper's argument
    assert not all(r[5] for r in rows), (
        "expected recursion to violate balance somewhere on this grid"
    )
