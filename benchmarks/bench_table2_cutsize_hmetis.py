"""Table 2 — hyperedge cut of the hMetis-style multilevel partitioner
run on the flattened netlist, same (k, b) grid.

Paper values: ~2670 (k=2) to ~3190 (k=4), nearly flat in b, sitting
~4.5x above Table 1 everywhere.  **Reproduction caveat**: our
from-scratch multilevel baseline, with standard large-net handling in
coarsening, is *stronger* than the paper's reported hMetis results —
at this circuit scale it matches the hierarchy-aware cut on the easy
points and only falls decisively behind as module count grows (25x at
k=4 on the 388-instance paper-shape circuit; see
``bench_paper_scale``).  What remains robust, and is asserted here:
the design-driven algorithm is competitive everywhere, wins in
aggregate at the largest k, always meets Formula 1 (the baseline's
recursive UBfactors can compound past it), and partitions a
40-vertex hypergraph instead of a 4000-vertex one.

This baseline study is frozen at the hMetis-style recursive-bisection
implementation (``repro.baselines.multilevel``) so the Table 2 numbers
stay comparable across revisions; the *production* multilevel engine —
direct k-way on the vectorized core — is measured separately at 100k
vertices in ``bench_multilevel`` (docs/multilevel.md).
"""

from _shared import CFG, design_rows, emit, multilevel_rows, table_rows

from repro.bench import (
    PAPER_TABLE2,
    format_table,
    shape_check_counters,
    shape_checks_cutsize,
)


def test_table2_cutsize_multilevel(benchmark):
    rows = benchmark.pedantic(multilevel_rows, rounds=1, iterations=1)
    headers = ["k", "b", "cut (measured)", "formula 1", "cut (paper hMetis)"]
    cells = [[r.k, r.b, r.cut, r.balanced, PAPER_TABLE2[(r.k, r.b)]] for r in rows]
    table = format_table(
        headers,
        cells,
        title=f"Table 2: multilevel (hMetis-style) cut on the flat netlist ({CFG.circuit})",
    )
    design = {(r.k, r.b): r.cut for r in design_rows()}
    flat = {(r.k, r.b): r.cut for r in rows}
    checks = shape_checks_cutsize(
        design,
        flat,
        design_balanced={(r.k, r.b): r.balanced for r in design_rows()},
        multilevel_balanced={(r.k, r.b): r.balanced for r in rows},
    )
    ratio = sum(flat.values()) / max(sum(design.values()), 1)
    block = "\n".join(
        [table, "",
         f"aggregate flat/design cut ratio: {ratio:.2f}x at this scale "
         f"(paper: ~4.5x on the 1.2M-gate netlist; measured 25x at k=4 "
         f"on the 388-instance paper-shape circuit)", ""]
        + [str(c) for c in checks]
    )
    emit(
        "table2_cutsize_hmetis",
        block,
        rows=table_rows(headers, cells),
        counters=shape_check_counters(checks),
    )
    assert all(c.passed for c in checks), [str(c) for c in checks]
