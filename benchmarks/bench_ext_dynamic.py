"""Extension — dynamic kernel policies (the paper's responsiveness goal).

Two policies on top of the static partition:

* adaptive checkpointing — classic Time Warp state-saving tuning;
* dynamic LP migration — "make it responsive to changes in processor
  loads" (the paper's future work), implemented as load-driven
  hottest-LP moves.

Measured on (a) the pre-simulation winner (a good static partition) and
(b) a deliberately skewed placement.  The honest result: migration
rescues bad placements but cannot beat a good static partition — it
balances load while ignoring communication affinity, which is the very
thing the design-driven partitioner optimizes.
"""

from _shared import CFG, emit, table_rows

from repro.bench import format_table
from repro.circuits import load_circuit, random_vectors
from repro.core import design_driven_partition
from repro.sim import ClusterSpec, TimeWarpConfig, compile_circuit, run_partitioned


def test_dynamic_policies(benchmark):
    netlist = load_circuit(CFG.circuit)
    circuit = compile_circuit(netlist)
    events = random_vectors(netlist, CFG.presim_vectors, seed=CFG.seed)
    part = design_driven_partition(netlist, k=4, b=10.0, seed=CFG.seed)
    clusters, good = part.to_simulation()
    skewed = [0] * len(clusters)
    skewed[0] = 1
    skewed[1] = 2
    skewed[2] = 3

    scenarios = [
        ("good static", good, TimeWarpConfig()),
        ("good + adaptive ckpt", good,
         TimeWarpConfig(adaptive_checkpointing=True)),
        ("good + migration", good,
         TimeWarpConfig(migration=True, gvt_interval=128)),
        ("skewed static", skewed, TimeWarpConfig()),
        ("skewed + migration", skewed,
         TimeWarpConfig(migration=True, gvt_interval=128)),
    ]

    def sweep():
        rows = []
        for name, placement, config in scenarios:
            rep = run_partitioned(
                circuit, clusters, list(placement), events,
                ClusterSpec(num_machines=4), config,
            )
            rows.append(
                [name, f"{rep.speedup:.2f}", rep.rollbacks,
                 rep.run_stats.migrations,
                 f"{rep.run_stats.peak_checkpoint_bytes // 1024}K"]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    headers = ["scenario", "speedup", "rollbacks", "migrations", "peak ckpt"]
    emit(
        "ext_dynamic",
        format_table(
            headers,
            rows,
            title=f"Extension: dynamic kernel policies (k=4, b=10, {CFG.circuit})",
        ),
        rows=table_rows(headers, rows),
        params={"k": 4, "b": 10.0},
    )
    by_name = {r[0]: r for r in rows}
    # migration must fire on the skewed placement and improve it
    assert by_name["skewed + migration"][3] > 0
    assert float(by_name["skewed + migration"][1]) >= float(
        by_name["skewed static"][1]
    ) * 0.95
    # adaptive checkpointing keeps results comparable on a good layout
    assert float(by_name["good + adaptive ckpt"][1]) > 0