"""Extension: batch data-parallel refinement vs heap FM at 100k scale.

The batch refiner (docs/refinement.md) exists to replace heap FM's
sequential move loop with whole-boundary gather/select/apply rounds.
This benchmark makes its three claims load-bearing on the same
100k-vertex netlist-shaped hypergraph as ``bench_multilevel.py``, both
refiners driven through the multilevel engine with identical config:

* **quality gate** — the batch refiner's cut must land within 5% of
  heap FM's at equal Formula-1 balance, asserted;
* **structural speedup gate** — the batch refiner's synchronous step
  count (``part.batch.rounds``, its critical path) must be at least an
  order of magnitude below FM's sequential move count
  (``part.fm.moves``), asserted — vector width replaces move-by-move
  dependency;
* **determinism gate** — the batch assignment's sha256 must be
  identical at 1, 2 and 4 workers (trivially, the refiner is
  single-process — the gate pins that the *driver* stays
  worker-invariant around it), asserted and printed.

Host seconds land in the quarantined ``host_timings`` channel; every
table row is deterministic and gates byte-for-byte under
``make_experiments_md.py --check --baseline``.
"""

import hashlib
import os

from _shared import CFG, emit, table_rows

from bench_multilevel import build_hypergraph
from repro.bench import format_table
from repro.core import multilevel_kway_partition
from repro.hypergraph import hyperedge_cut
from repro.obs import MetricsRecorder

K = 4
B = 10.0
WORKER_COUNTS = (1, 2, 4)
#: the quality gate: batch cut <= QUALITY_MARGIN * fm cut
QUALITY_MARGIN = 1.05
#: the structural gate: fm moves >= STRUCTURAL_FACTOR * batch rounds
STRUCTURAL_FACTOR = 10


def test_batch_refine_vs_fm_at_scale(benchmark):
    hg = build_hypergraph()

    def sweep():
        batch_runs = {}
        for workers in WORKER_COUNTS:
            rec = MetricsRecorder()
            batch_runs[workers] = (
                multilevel_kway_partition(hg, K, B, seed=CFG.seed,
                                          workers=workers, refiner="batch",
                                          recorder=rec),
                rec,
            )
        fm_rec = MetricsRecorder()
        fm = multilevel_kway_partition(hg, K, B, seed=CFG.seed,
                                       refiner="fm", recorder=fm_rec)
        return batch_runs, fm, fm_rec

    batch_runs, fm, fm_rec = benchmark.pedantic(sweep, rounds=1,
                                                iterations=1)

    batch, batch_rec = batch_runs[1]
    digests = {
        w: hashlib.sha256(r.assignment.tobytes()).hexdigest()
        for w, (r, _) in batch_runs.items()
    }
    batch_counters = batch_rec.as_counters()
    fm_counters = fm_rec.as_counters()
    batch_rounds = batch_counters["part.batch.rounds"]
    fm_moves = fm_counters["part.fm.moves"]

    rows = []
    host_timings = {}
    for workers in WORKER_COUNTS:
        result, rec = batch_runs[workers]
        wall = sum(rec.host_timings().values())
        host_timings[f"batch.workers={workers}"] = wall
        rows.append([
            f"batch w={workers}", result.cut_size, result.balanced,
            batch_rounds, digests[workers][:12],
        ])
    host_timings["fm"] = sum(fm_rec.host_timings().values())
    rows.append([
        "fm", fm.cut_size, fm.balanced, fm_moves,
        hashlib.sha256(fm.assignment.tobytes()).hexdigest()[:12],
    ])

    headers = ["refiner", "cut", "balanced", "steps (rounds/moves)",
               "sha256[:12]"]
    emit(
        "batch_refine",
        format_table(
            headers, rows,
            title=(
                f"Batch refinement vs heap FM under multilevel "
                f"({hg.num_vertices} vertices, {hg.num_edges} edges; "
                f"k={K}, b={B}; host cores: {os.cpu_count()})"
            ),
        ),
        rows=table_rows(headers, rows),
        params={"circuit": "synthetic-100k", "vertices": hg.num_vertices,
                "edges": hg.num_edges, "k": K, "b": B,
                "quality_margin": QUALITY_MARGIN,
                "host_cpus": os.cpu_count() or 1},
        counters={
            "part.cut_size": batch.cut_size,
            "part.balanced": int(batch.balanced),
            "part.batch.rounds": batch_rounds,
            "part.batch.moves": batch_counters["part.batch.moves"],
            "part.batch.gain": batch_counters["part.batch.gain"],
            "part.batch.kicks": batch_counters["part.batch.kicks"],
            "part.batch.candidates": batch_counters["part.batch.candidates"],
            "part.batch.conflicts": batch_counters["part.batch.conflicts"],
            "part.batch.balance_dropped":
                batch_counters["part.batch.balance_dropped"],
            "part.batch.boundary.max":
                batch_counters["part.batch.boundary.max"],
            "part.fm.moves": fm_moves,
        },
        host_timings=host_timings,
    )

    # oracle: the reported cuts are the recomputed cuts
    assert batch.cut_size == hyperedge_cut(hg, batch.assignment)
    assert fm.cut_size == hyperedge_cut(hg, fm.assignment)

    # determinism gate: identical partition bytes at any worker count
    assert len(set(digests.values())) == 1, digests

    # quality gate: within 5% of heap FM's cut at equal balance
    assert batch.balanced and fm.balanced
    assert batch.cut_size <= int(QUALITY_MARGIN * fm.cut_size), (
        f"batch cut {batch.cut_size} more than "
        f"{QUALITY_MARGIN:.0%} of fm cut {fm.cut_size}"
    )

    # structural speedup gate: the batch critical path (synchronous
    # rounds) is an order of magnitude below FM's sequential move count
    assert fm_moves >= STRUCTURAL_FACTOR * batch_rounds, (
        f"no structural speedup: fm moves {fm_moves} vs "
        f"batch rounds {batch_rounds}"
    )
