"""Micro-benchmarks of the individual substrates.

Unlike the table/figure benchmarks (single-shot experiment
reproductions), these use pytest-benchmark's statistical timing to
track the throughput of each building block: the Verilog front end,
hypergraph construction, FM refinement, multilevel coarsening, and
both simulators.
"""

import numpy as np

from _shared import CFG, emit

from repro.baselines import coarsen, fm_refine_bisection, multilevel_bisect
from repro.bench import format_kv
from repro.circuits import circuit_source, load_circuit, random_vectors
from repro.core import design_driven_partition
from repro.hypergraph import Clustering, flat_hypergraph
from repro.obs import MetricsRecorder
from repro.sim import (
    ClusterSpec,
    SequentialSimulator,
    TimeWarpConfig,
    TimeWarpEngine,
    compile_circuit,
    run_partitioned,
)
from repro.verilog import compile_verilog, parse_source


SRC = circuit_source(CFG.circuit)
NETLIST = load_circuit(CFG.circuit)
CIRCUIT = compile_circuit(NETLIST)
FLAT = flat_hypergraph(NETLIST)
EVENTS = random_vectors(NETLIST, 10, seed=1)


def test_parse(benchmark):
    benchmark(parse_source, SRC)


def test_elaborate(benchmark):
    benchmark(compile_verilog, SRC)


def test_flat_hypergraph_build(benchmark):
    benchmark(lambda: Clustering.flat(NETLIST).hypergraph())


def test_hierarchy_hypergraph_build(benchmark):
    benchmark(lambda: Clustering.top_level(NETLIST).hypergraph())


def test_fm_bisection_refine(benchmark):
    rng = np.random.default_rng(0)
    total = FLAT.total_weight

    def run():
        side = rng.integers(0, 2, size=FLAT.num_vertices).astype(np.int64)
        return fm_refine_bisection(
            FLAT, side, (0.4 * total, 0.6 * total), (0.4 * total, 0.6 * total),
            max_passes=2,
        )

    benchmark(run)


def test_coarsen_stack(benchmark):
    benchmark(lambda: coarsen(FLAT, target_vertices=96, seed=0))


def test_multilevel_bisect(benchmark):
    benchmark(lambda: multilevel_bisect(FLAT, seed=0))


def test_design_driven_partition(benchmark):
    benchmark(lambda: design_driven_partition(NETLIST, k=4, b=10.0, seed=1))


def test_sequential_sim_10_vectors(benchmark):
    def run():
        sim = SequentialSimulator(CIRCUIT)
        sim.add_inputs(EVENTS)
        return sim.run().gate_evals

    benchmark(run)


def test_timewarp_sim_10_vectors(benchmark):
    part = design_driven_partition(NETLIST, k=4, b=10.0, seed=1)
    clusters, lpm = part.to_simulation()

    def run():
        eng = TimeWarpEngine(
            CIRCUIT, clusters, lpm, ClusterSpec(num_machines=4), TimeWarpConfig()
        )
        eng.load_inputs(EVENTS)
        return eng.run().processed_events

    benchmark(run)


def test_substrate_metrics(benchmark):
    """Full partition + simulate pass through one MetricsRecorder —
    the observability layer's deterministic end-to-end exercise."""

    def run():
        rec = MetricsRecorder()
        part = design_driven_partition(NETLIST, k=4, b=10.0, seed=1,
                                       recorder=rec)
        rec.incr("part.cut_size", part.cut_size)
        rec.incr("part.balanced", int(part.balanced))
        clusters, lpm = part.to_simulation()
        run_partitioned(
            CIRCUIT, clusters, lpm, EVENTS,
            ClusterSpec(num_machines=4), TimeWarpConfig(), recorder=rec,
        )
        return rec

    rec = benchmark.pedantic(run, rounds=1, iterations=1)
    counters = rec.as_counters()
    shown = {k: v for k, v in counters.items()
             if k in ("part.cut_size", "part.fm.moves", "part.rounds",
                      "tw.processed_events", "tw.rollbacks", "tw.speedup")}
    emit(
        "micro_substrates",
        format_kv(shown, title=f"Substrate metrics (k=4, b=10, {CFG.circuit})"),
        counters=counters,
        params={"k": 4, "b": 10.0, "vectors": 10},
    )
    assert counters["tw.processed_events"] > 0
    assert counters["partition.refine.calls"] >= 1
