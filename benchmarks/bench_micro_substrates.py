"""Micro-benchmarks of the individual substrates.

Unlike the table/figure benchmarks (single-shot experiment
reproductions), these use pytest-benchmark's statistical timing to
track the throughput of each building block: the Verilog front end,
hypergraph construction, FM refinement, multilevel coarsening, and
both simulators.
"""

import numpy as np

from _shared import CFG

from repro.baselines import coarsen, fm_refine_bisection, multilevel_bisect
from repro.circuits import circuit_source, load_circuit, random_vectors
from repro.core import design_driven_partition
from repro.hypergraph import Clustering, flat_hypergraph
from repro.sim import (
    ClusterSpec,
    SequentialSimulator,
    TimeWarpConfig,
    TimeWarpEngine,
    compile_circuit,
)
from repro.verilog import compile_verilog, parse_source


SRC = circuit_source(CFG.circuit)
NETLIST = load_circuit(CFG.circuit)
CIRCUIT = compile_circuit(NETLIST)
FLAT = flat_hypergraph(NETLIST)
EVENTS = random_vectors(NETLIST, 10, seed=1)


def test_parse(benchmark):
    benchmark(parse_source, SRC)


def test_elaborate(benchmark):
    benchmark(compile_verilog, SRC)


def test_flat_hypergraph_build(benchmark):
    benchmark(lambda: Clustering.flat(NETLIST).hypergraph())


def test_hierarchy_hypergraph_build(benchmark):
    benchmark(lambda: Clustering.top_level(NETLIST).hypergraph())


def test_fm_bisection_refine(benchmark):
    rng = np.random.default_rng(0)
    total = FLAT.total_weight

    def run():
        side = rng.integers(0, 2, size=FLAT.num_vertices).astype(np.int64)
        return fm_refine_bisection(
            FLAT, side, (0.4 * total, 0.6 * total), (0.4 * total, 0.6 * total),
            max_passes=2,
        )

    benchmark(run)


def test_coarsen_stack(benchmark):
    benchmark(lambda: coarsen(FLAT, target_vertices=96, seed=0))


def test_multilevel_bisect(benchmark):
    benchmark(lambda: multilevel_bisect(FLAT, seed=0))


def test_design_driven_partition(benchmark):
    benchmark(lambda: design_driven_partition(NETLIST, k=4, b=10.0, seed=1))


def test_sequential_sim_10_vectors(benchmark):
    def run():
        sim = SequentialSimulator(CIRCUIT)
        sim.add_inputs(EVENTS)
        return sim.run().gate_evals

    benchmark(run)


def test_timewarp_sim_10_vectors(benchmark):
    part = design_driven_partition(NETLIST, k=4, b=10.0, seed=1)
    clusters, lpm = part.to_simulation()

    def run():
        eng = TimeWarpEngine(
            CIRCUIT, clusters, lpm, ClusterSpec(num_machines=4), TimeWarpConfig()
        )
        eng.load_inputs(EVENTS)
        return eng.run().processed_events

    benchmark(run)
