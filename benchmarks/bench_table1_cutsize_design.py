"""Table 1 — hyperedge cut of the design-driven partitioner over (k, b).

Paper values (1.2 M-gate netlist): 2428 down to 513 at k=2; the shape
to reproduce is cut falling as b relaxes and rising with k, well below
the flat multilevel baseline of Table 2.
"""

from _shared import CFG, design_rows, emit, table_rows

from repro.bench import PAPER_TABLE1, format_table


def test_table1_cutsize_design(benchmark):
    rows = benchmark.pedantic(design_rows, rounds=1, iterations=1)
    headers = ["k", "b", "cut (measured)", "cut (paper)", "balanced", "flattened"]
    cells = [
        [r.k, r.b, r.cut, PAPER_TABLE1[(r.k, r.b)], r.balanced,
         r.extra.get("flatten_steps", 0)]
        for r in rows
    ]
    table = format_table(
        headers,
        cells,
        title=f"Table 1: design-driven cut size ({CFG.circuit})",
    )
    emit("table1_cutsize_design", table, rows=table_rows(headers, cells))
    # shape assertions (not absolute values — the circuit is scaled)
    by_kb = {(r.k, r.b): r.cut for r in rows}
    ks = sorted({r.k for r in rows})
    bs = sorted({r.b for r in rows})
    for k in ks:
        assert by_kb[(k, bs[-1])] <= by_kb[(k, bs[0])]
    assert by_kb[(ks[-1], bs[2])] >= by_kb[(ks[0], bs[2])]
