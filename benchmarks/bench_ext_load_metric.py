"""Extension — activity-based load metric (the paper's future work).

"Currently our load metric is the number of gates, which is not
entirely adequate."  This benchmark implements the comparison the
paper proposes: balance by gate count (the paper's metric) vs balance
by profiled gate activity, then measure which partition actually runs
faster on the virtual cluster.
"""

from _shared import CFG, emit, table_rows

from repro.bench import format_table
from repro.circuits import load_circuit, random_vectors
from repro.core import activity_clustering, design_driven_partition
from repro.sim import ClusterSpec, TimeWarpConfig, compile_circuit, run_partitioned


def test_activity_load_metric(benchmark):
    netlist = load_circuit(CFG.circuit)
    circuit = compile_circuit(netlist)
    profile_events = random_vectors(netlist, 20, seed=CFG.seed)
    run_events = random_vectors(netlist, CFG.presim_vectors, seed=CFG.seed + 5)

    def sweep():
        rows = []
        weighted = activity_clustering(netlist, profile_events)
        for k in (2, 4):
            for label, target in (("gates", netlist), ("activity", weighted)):
                part = design_driven_partition(target, k=k, b=10.0, seed=CFG.seed)
                clusters, machines = part.to_simulation()
                rep = run_partitioned(
                    circuit, clusters, machines, run_events,
                    ClusterSpec(num_machines=k), TimeWarpConfig(),
                )
                rows.append(
                    [k, label, part.cut_size, f"{rep.speedup:.2f}",
                     rep.messages, rep.rollbacks]
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    headers = ["k", "load metric", "cut", "speedup", "msgs", "rollbacks"]
    emit(
        "ext_load_metric",
        format_table(
            headers,
            rows,
            title=(
                f"Extension: gate-count vs activity load metric "
                f"(b=10, {CFG.circuit})"
            ),
        ),
        rows=table_rows(headers, rows),
        params={"b": 10.0},
    )
    # both metrics must produce working partitions
    assert all(float(r[3]) > 0 for r in rows)
