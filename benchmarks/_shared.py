"""Shared state for the benchmark suite.

The paper's tables build on each other (Table 4 selects from Table 3,
Table 5 and Figures 5-7 consume the selections), so expensive artifacts
are computed once per pytest session and cached here.  Every benchmark
prints its rows (run with ``-s`` to see them live) and also writes them
under ``benchmarks/out/`` so results survive the run.
"""

from __future__ import annotations

import functools
import re
from datetime import datetime, timezone
from pathlib import Path

from repro.bench import (
    ExperimentConfig,
    table1_cutsize_design,
    table2_cutsize_multilevel,
    table3_presim,
    table5_full_sim,
)
from repro.obs import metrics_document, validate_metrics, write_metrics
from repro.obs.sampler import ResourceSampler

#: the benchmark workload: a single scaled Viterbi decoder — one
#: decoder like the paper's (no trivially separable channels), with the
#: heavyweight SMU super-gates that make the balance factor bite
CFG = ExperimentConfig(
    circuit="viterbi-single",
    presim_vectors=60,
    full_vectors=600,
    seed=1,
)

OUT_DIR = Path(__file__).parent / "out"


@functools.lru_cache(maxsize=1)
def _sampler() -> ResourceSampler:
    """Process-wide resource sampler, started on first use.

    Every study that goes through :func:`emit` gets the same
    ``obs.sampler.*`` peak-RSS / CPU readings in its ``host_timings``
    — one background thread for the whole benchmark process instead of
    each study hand-rolling (or forgetting) its own sampler.  Peaks are
    monotone (VmHWM is a lifetime high-water mark), so later studies
    report the process peak up to their emit time.
    """
    return ResourceSampler().start()


def emit(
    name: str,
    text: str,
    *,
    params: dict | None = None,
    counters: dict | None = None,
    rows: list[dict] | None = None,
    series: dict[str, list] | None = None,
    host_timings: dict[str, float] | None = None,
    recorder=None,
) -> None:
    """Print a result block and persist it under benchmarks/out/.

    The text lands in ``<name>.txt`` as before; when any of ``params``
    / ``counters`` / ``rows`` / ``series`` / ``recorder`` is given, a
    schema-validated metrics document (see :mod:`repro.obs.metrics`) is
    written next to it as ``BENCH_<name>.json``.  Everything but the
    ``generated_at`` stamp is deterministic for a fixed seed, so
    ``make_experiments_md.py --check`` can diff reruns byte-for-byte
    after :func:`repro.obs.strip_volatile`.  Host wall measurements
    (non-deterministic by nature) belong in ``host_timings`` — the
    quarantined channel ``strip_volatile`` removes before comparison —
    never in ``counters`` or ``rows``.

    A ``recorder`` (``MetricsRecorder`` or span-capable
    ``SpanRecorder``) folds its counters/maxima/phase calls into the
    document's deterministic counters; a span recorder additionally
    contributes the volatile ``spans`` timeline, which ``repro obs
    timeline BENCH_<name>.json`` exports for Perfetto.  Its host phase
    walls merge into ``host_timings`` (explicit keys win).
    """
    print()
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    if (params is None and counters is None and rows is None
            and series is None and host_timings is None
            and recorder is None):
        return
    base_params = {
        "circuit": CFG.circuit,
        "presim_vectors": CFG.presim_vectors,
        "full_vectors": CFG.full_vectors,
        "seed": CFG.seed,
    }
    base_params.update(params or {})
    merged_counters = {"bench.rows": len(rows)} if rows is not None else {}
    merged_counters.update(counters or {})
    doc = metrics_document(
        name,
        kind="bench",
        params=base_params,
        counters=merged_counters,
        rows=rows,
        series=series,
        recorder=recorder,
        generated_at=datetime.now(timezone.utc).isoformat(timespec="seconds"),
    )
    merged_timings = dict(recorder.host_timings()) if recorder is not None else {}
    sampler = _sampler()
    sampler._sample_once()
    merged_timings.update(sampler.as_host_values())
    merged_timings.update(host_timings or {})
    if merged_timings:
        doc["host_timings"] = {
            k: float(v) for k, v in sorted(merged_timings.items())
        }
        validate_metrics(doc)
    write_metrics(OUT_DIR / f"BENCH_{name}.json", doc)


def _scalar(value):
    """Coerce numpy scalars to plain Python for JSON serialization."""
    if isinstance(value, (str, bytes)):
        return value
    item = getattr(value, "item", None)
    return item() if callable(item) else value


def table_rows(headers: list[str], rows: list[list]) -> list[dict]:
    """Convert ``format_table``-style headers + list rows into metrics
    document row dicts (snake_case keys, plain scalar values)."""
    keys = [re.sub(r"[^a-z0-9]+", "_", h.lower()).strip("_") for h in headers]
    return [dict(zip(keys, (_scalar(v) for v in row))) for row in rows]


@functools.lru_cache(maxsize=1)
def design_rows():
    return table1_cutsize_design(CFG)


@functools.lru_cache(maxsize=1)
def multilevel_rows():
    return table2_cutsize_multilevel(CFG)


@functools.lru_cache(maxsize=1)
def presim_study():
    return table3_presim(CFG)


@functools.lru_cache(maxsize=1)
def full_sim_rows():
    return table5_full_sim(CFG, presim_study())
