"""Shared state for the benchmark suite.

The paper's tables build on each other (Table 4 selects from Table 3,
Table 5 and Figures 5-7 consume the selections), so expensive artifacts
are computed once per pytest session and cached here.  Every benchmark
prints its rows (run with ``-s`` to see them live) and also writes them
under ``benchmarks/out/`` so results survive the run.
"""

from __future__ import annotations

import functools
from pathlib import Path

from repro.bench import (
    ExperimentConfig,
    table1_cutsize_design,
    table2_cutsize_multilevel,
    table3_presim,
    table5_full_sim,
)

#: the benchmark workload: a single scaled Viterbi decoder — one
#: decoder like the paper's (no trivially separable channels), with the
#: heavyweight SMU super-gates that make the balance factor bite
CFG = ExperimentConfig(
    circuit="viterbi-single",
    presim_vectors=60,
    full_vectors=600,
    seed=1,
)

OUT_DIR = Path(__file__).parent / "out"


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/out/."""
    print()
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


@functools.lru_cache(maxsize=1)
def design_rows():
    return table1_cutsize_design(CFG)


@functools.lru_cache(maxsize=1)
def multilevel_rows():
    return table2_cutsize_multilevel(CFG)


@functools.lru_cache(maxsize=1)
def presim_study():
    return table3_presim(CFG)


@functools.lru_cache(maxsize=1)
def full_sim_rows():
    return table5_full_sim(CFG, presim_study())
