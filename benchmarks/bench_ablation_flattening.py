"""Ablation — super-gate flattening on/off (paper §3.2).

With flattening disabled, a tight balance factor simply cannot be met
when module granularity is too coarse; with it enabled, the algorithm
trades cut for feasibility.  This is the mechanism behind Table 1's
strong b-dependence.
"""

from _shared import CFG, emit, table_rows

from repro.bench import format_table
from repro.circuits import load_circuit
from repro.core import BalanceConstraint, design_driven_partition


def test_flattening_ablation(benchmark):
    netlist = load_circuit(CFG.circuit)

    def sweep():
        rows = []
        for b in (1.0, 2.5, 7.5):
            on = design_driven_partition(netlist, k=4, b=b, seed=CFG.seed)
            off = design_driven_partition(
                netlist, k=4, b=b, seed=CFG.seed, max_flatten_steps=0
            )
            rows.append(
                [b, on.cut_size, on.balanced, on.flatten_steps,
                 off.cut_size, off.balanced]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    headers = ["b", "cut (flatten on)", "balanced", "steps",
               "cut (flatten off)", "balanced (off)"]
    emit(
        "ablation_flattening",
        format_table(
            headers,
            rows,
            title=f"Ablation: super-gate flattening (k=4, {CFG.circuit})",
        ),
        rows=table_rows(headers, rows),
        params={"k": 4},
    )
    # at some tight b, flattening is what makes the constraint reachable
    tight = rows[0]
    assert tight[2] or not tight[5], (
        "expected flattening to help meet (or both to fail) the tightest b"
    )
    helped = any(r[2] and not r[5] for r in rows)
    assert helped, "flattening never changed feasibility on this grid"
