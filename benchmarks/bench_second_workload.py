"""Generalization — the paper's planned second workload.

The paper's future work: experiment "on a large, realistic design"
synthesized from an open-source Sparc RTL.  This benchmark runs the
Table 1/2 comparison and a k-sweep speedup study on the CPU-shaped
workload (`cpu8`): register file, ALU, control ROM, pipeline registers
— a module mix very different from the Viterbi decoder's.
"""

from _shared import CFG, emit, table_rows

from repro.baselines import multilevel_partition
from repro.bench import format_table
from repro.circuits import load_circuit, natural_schedule, random_vectors
from repro.core import design_driven_partition
from repro.hypergraph import flat_hypergraph
from repro.sim import ClusterSpec, compile_circuit, run_partitioned, run_sequential_baseline

CIRCUIT = "cpu8"


def test_second_workload(benchmark):
    netlist = load_circuit(CIRCUIT)
    circuit = compile_circuit(netlist)
    flat = flat_hypergraph(netlist)
    events = random_vectors(
        netlist, 30, seed=CFG.seed, schedule=natural_schedule(netlist)
    )

    def sweep():
        sequential, _ = run_sequential_baseline(
            circuit, events, ClusterSpec(num_machines=1)
        )
        rows = []
        for k in (2, 3, 4):
            d = design_driven_partition(netlist, k=k, b=10.0, seed=CFG.seed)
            ml = multilevel_partition(flat, k, 10.0, seed=CFG.seed)
            clusters, machines = d.to_simulation()
            rep = run_partitioned(
                circuit, clusters, machines, events,
                ClusterSpec(num_machines=k), sequential=sequential,
            )
            rows.append([k, d.cut_size, d.balanced, ml.cut_size,
                         f"{rep.speedup:.2f}", rep.messages, rep.rollbacks])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    headers = ["k", "design cut", "balanced", "multilevel cut", "speedup",
               "msgs", "rollbacks"]
    emit(
        "second_workload",
        format_table(
            headers,
            rows,
            title=f"Second workload ({CIRCUIT}: {netlist.num_gates} gates, "
                  f"b=10) — design-driven vs multilevel-on-flat",
        )
        + "\n\nReading: a bit-sliced CPU datapath is the hierarchy-aware "
        "algorithm's hard case — the natural min-cut runs along bit "
        "slices, *across* module boundaries, so the flat multilevel "
        "partitioner can match or beat the module-granularity cut at "
        "k>=3 (it ties at k=2).  The design-driven partitions are the "
        "only ones here that always meet Formula 1.  Speedups below 1 "
        "at k>=3 reflect the workload, not the partitioner: a small "
        "in-order CPU serializes on its register file and PC chain.",
        rows=table_rows(headers, rows),
        params={"circuit": CIRCUIT, "b": 10.0,
                "num_gates": netlist.num_gates},
    )
    # contracts that must generalize: feasibility everywhere, parity on
    # the natural 2-way split, and no blow-up vs the flat baseline
    assert all(r[2] for r in rows)
    assert rows[0][1] <= rows[0][3]
    assert sum(r[1] for r in rows) <= 1.5 * sum(r[3] for r in rows)
