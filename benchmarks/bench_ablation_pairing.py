"""Ablation — pairing strategies (paper §3.1.1).

The paper lists random (fast, poor), exhaustive (slow, escapes local
minima), cut-based, and gain-based pairing; it does not publish a
comparison table.  This benchmark produces one: final cut and wall time
per strategy on the Table-1 workload.
"""

import time

from _shared import CFG, emit, table_rows

from repro.bench import format_table
from repro.circuits import load_circuit
from repro.core import design_driven_partition


def test_pairing_strategies(benchmark):
    netlist = load_circuit(CFG.circuit)

    def sweep():
        rows = []
        walls = {}
        for strategy in ("random", "cut", "gain", "exhaustive"):
            t0 = time.perf_counter()
            r = design_driven_partition(
                netlist, k=4, b=7.5, seed=CFG.seed, pairing=strategy
            )
            walls[f"pairing.{strategy}"] = time.perf_counter() - t0
            rows.append([strategy, r.cut_size, r.balanced,
                         f"{walls[f'pairing.{strategy}']:.2f}"])
        return rows, walls

    rows, walls = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_pairing",
        format_table(
            ["pairing", "cut", "balanced", "time (s)"],
            rows,
            title=f"Ablation: pairing strategy (k=4, b=7.5, {CFG.circuit})",
        ),
        # the wall-clock column is host-dependent; the metrics document
        # keeps only the deterministic fields in rows and quarantines
        # the per-strategy walls in the host_timings channel
        rows=table_rows(["pairing", "cut", "balanced"],
                        [r[:3] for r in rows]),
        params={"k": 4, "b": 7.5},
        host_timings=walls,
    )
    cuts = {r[0]: r[1] for r in rows}
    # exhaustive search must not lose to random pairing
    assert cuts["exhaustive"] <= cuts["random"]
