"""Simulation-substrate speed study: vectorized kernel vs pre-PR path.

The fast simulation substrate (docs/performance.md, "Simulation
kernel") claims a large host-wall win with **bit-identical** results.
This benchmark runs the pre-simulation (k, b) sweep — sequential
baseline plus one Time Warp run per candidate partition, the exact
workload ``brute_force_presim`` performs — through both the current
stack and the complete pre-optimization stack
(:class:`repro.bench.LegacyClusterLP` /
:class:`repro.bench.LegacySequentialSimulator` /
:class:`repro.bench.LegacyTimeWarpEngine`, kept runnable for exactly
this purpose).

``sim_speed_study`` itself asserts every structural quantity is
identical — per-point committed events, messages, rollbacks, modeled
walls (to the bit, via ``repr``), the chosen best (k, b) and the sha256
digest over the canonical rows — so the wall ratio is a pure
like-for-like measurement.  Structural quantities land in the metrics
rows/counters and gate deterministically under
``make_experiments_md.py --check``; the host walls and their ratio are
host-dependent and live in the quarantined ``host_timings`` channel.

The wall-clock assertion uses a noise-tolerant floor (3x) below the
typically measured ~4.5-5x so a loaded host does not flake the suite;
the measured ratio is always visible in the emitted table.
"""

from _shared import emit

from repro.bench import format_table, sim_speed_study

CIRCUIT = "viterbi-single"
VECTORS = 100
KS = (2, 3, 4)
BS = (7.5, 12.5)
SEED = 1
GVT_INTERVAL = 64

#: lower bound on the wall-clock ratio asserted by the test — well
#: under the ~4.5-5x typically measured so host noise cannot flake it
MIN_SPEEDUP = 3.0


def test_sim_substrate_speed(benchmark):
    fast, slow = benchmark.pedantic(
        lambda: sim_speed_study(
            circuit_name=CIRCUIT, vectors=VECTORS, ks=KS, bs=BS,
            seed=SEED, gvt_interval=GVT_INTERVAL,
        ),
        rounds=1, iterations=1,
    )

    ratio = slow.host_seconds / fast.host_seconds
    headers = ["impl", "best (k, b)", "committed", "messages", "rollbacks",
               "batches", "batch gates", "scalar gates", "wall (s)",
               "speedup"]
    rows = [
        [s.impl, f"({s.best_k}, {s.best_b})", s.committed_events,
         s.messages, s.rollbacks, s.kernel_batches, s.kernel_batch_gates,
         s.kernel_scalar_gates, f"{s.host_seconds:.2f}",
         f"{slow.host_seconds / s.host_seconds:.2f}x"]
        for s in (fast, slow)
    ]
    emit(
        "sim_speed",
        format_table(
            headers,
            rows,
            title=(
                f"Simulation-substrate speed study ({CIRCUIT}, "
                f"{VECTORS} vectors; k in {list(KS)}, b in {list(BS)}, "
                f"seed={SEED}, gvt_interval={GVT_INTERVAL}; presim sweep: "
                f"sequential baseline + one Time Warp run per (k, b))"
            ),
        ),
        # the JSON rows are the per-point structural outcomes shared by
        # both implementations (modeled walls as exact reprs); the host
        # walls go to host_timings
        rows=[
            {**{k: v for k, v in p.items() if k != "machine_walls"},
             "machine_walls": ";".join(p["machine_walls"])}
            for p in fast.points
        ],
        params={"sweep_circuit": CIRCUIT, "sweep_vectors": VECTORS,
                "ks": repr(list(KS)), "bs": repr(list(BS)),
                "sweep_seed": SEED, "gvt_interval": GVT_INTERVAL,
                "digest": fast.digest},
        counters={
            "tw.committed_events": fast.committed_events,
            "tw.processed_events": fast.processed_events,
            "tw.messages_sent": fast.messages,
            "tw.anti_messages_sent": fast.anti_messages,
            "tw.rollbacks": fast.rollbacks,
            "tw.rolled_back_events": fast.rolled_back_events,
            "sim.kernel.batches": fast.kernel_batches,
            "sim.kernel.batch_gates": fast.kernel_batch_gates,
            "sim.kernel.scalar_gates": fast.kernel_scalar_gates,
        },
        host_timings={
            "sim.sweep.vectorized": fast.host_seconds,
            "sim.sweep.legacy": slow.host_seconds,
            "sim.sweep.speedup": ratio,
        },
    )

    # structural parity already asserted inside sim_speed_study; pin
    # that the study actually exercised the batched kernel path
    assert fast.kernel_batches > 0
    assert fast.kernel_batch_gates > 0
    assert fast.kernel_scalar_gates > 0
    # the legacy path never touches the vectorized kernel
    assert slow.kernel_batches == 0
    # the headline: the vectorized substrate is multiple times faster on
    # the identical sweep (floor is noise-tolerant; measured ~4.5-5x)
    assert ratio >= MIN_SPEEDUP, (
        f"vectorized substrate only {ratio:.2f}x faster than legacy "
        f"(floor {MIN_SPEEDUP}x)"
    )
