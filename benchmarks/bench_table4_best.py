"""Table 4 — best partition per machine count, by pre-simulation speedup.

Paper: k=2 -> b=12.5 (speedup 1.65), k=3 -> b=10 (1.81), k=4 -> b=7.5
(1.96).  Shape: every winner uses an intermediate b (neither the
tightest nor necessarily the loosest), and best speedup grows with k.
"""

from _shared import CFG, emit, presim_study, table_rows

from repro.bench import PAPER_TABLE4, format_table
from repro.core import PAPER_B_VALUES


def test_table4_best_partitions(benchmark):
    def compute():
        return presim_study().best_per_k()

    best = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for k in sorted(best):
        p = best[k]
        pb, pcut, ptime, pspeed = PAPER_TABLE4[k]
        rows.append(
            [k, p.b, p.cut_size, f"{p.sim_time:.4f}", f"{p.speedup:.2f}",
             pb, pcut, ptime, pspeed]
        )
    headers = ["k", "b*", "cut", "time (s)", "speedup",
               "paper b*", "paper cut", "paper time", "paper speedup"]
    table = format_table(
        headers,
        rows,
        title=f"Table 4: best pre-simulation partitions ({CFG.circuit})",
    )
    emit("table4_best", table, rows=table_rows(headers, rows))
    # winners never sit at the tightest b
    assert all(p.b != min(PAPER_B_VALUES) for p in best.values())
    speeds = [best[k].speedup for k in sorted(best)]
    assert speeds[-1] >= speeds[0]
