"""Parallel refinement at paper scale: serial vs 2 vs 4 workers.

The determinism contract (docs/parallelism.md) says worker count is a
wall-time knob only, so this benchmark measures both sides of that
claim on the 388-instance decoder at k=16 with `exhaustive` pairing —
the configuration with the most parallelism to harvest (tournament
rounds of 8 disjoint pairs):

* **results** — the assignment must be byte-identical across worker
  counts (asserted), and so must the *entire merged telemetry
  document*: each run records under a span-capable recorder whose
  worker payloads merge in task-index order, and the canonical dump
  (``dumps_metrics`` after ``strip_volatile``) must hash to the same
  sha256 at every worker count (asserted — the ISSUE acceptance bar);
* **wall time** — the refinement-phase host seconds land in the
  quarantined ``host_timings`` channel of the metrics JSON, alongside
  the run-configuration host values (``part.refine.workers``,
  ``part.refine.ideal_speedup``, ``part.refine.utilization``) that
  *intentionally* vary with worker count and therefore may never sit
  in the gated counters.

On hosts with fewer cores than workers the measured wall speedup is
meaningless (a 1-core box cannot beat serial), so the wall-clock
assertion engages only when ``os.cpu_count()`` can actually supply the
workers; the structural bound is asserted unconditionally.
"""

import hashlib
import os

from _shared import CFG, emit, table_rows

from repro.bench import format_table
from repro.circuits import load_circuit
from repro.core import design_driven_partition
from repro.obs import (
    SpanRecorder,
    dumps_metrics,
    metrics_document,
    strip_volatile,
)

K = 16
B = 10.0
WORKER_COUNTS = (1, 2, 4)


def _digest(recorder: SpanRecorder, cut: int, balanced: bool) -> str:
    """sha256 of the canonical volatile-stripped metrics document one
    worker-count run produces — the merged-telemetry identity check."""
    doc = metrics_document(
        "parallel_refine_digest",
        kind="partition",
        params={"circuit": "viterbi-paper", "k": K, "b": B,
                "pairing": "exhaustive", "seed": CFG.seed},
        counters={"part.cut_size": cut, "part.balanced": int(balanced)},
        recorder=recorder,
    )
    return hashlib.sha256(
        dumps_metrics(strip_volatile(doc)).encode()).hexdigest()


def test_parallel_refine_speedup(benchmark):
    netlist = load_circuit("viterbi-paper")

    def sweep():
        out = {}
        for workers in WORKER_COUNTS:
            rec = SpanRecorder()
            result = design_driven_partition(
                netlist, k=K, b=B, seed=CFG.seed, pairing="exhaustive",
                workers=workers, recorder=rec,
            )
            out[workers] = (result, rec)
        return out

    runs = benchmark.pedantic(sweep, rounds=1, iterations=1)

    serial_result, serial_rec = runs[1]
    serial_wall = serial_rec.host_timings()["partition.refine"]
    rows = []
    host_timings = {}
    for workers in WORKER_COUNTS:
        result, rec = runs[workers]
        counters = rec.as_counters()
        host = rec.host_timings()
        wall = host["partition.refine"]
        host_timings[f"partition.refine.workers={workers}"] = wall
        rows.append([
            workers,
            result.cut_size,
            result.balanced,
            counters["part.refine.rounds"],
            counters["part.refine.tasks"],
            counters["obs.span.count"],
            host["part.refine.ideal_speedup"],
            host["part.refine.utilization"],
            f"{wall:.2f}",
            f"{serial_wall / wall:.2f}x",
        ])

    headers = ["workers", "cut", "balanced", "rounds", "tasks", "spans",
               "ideal speedup", "utilization", "refine wall (s)",
               "measured speedup"]
    emit(
        "parallel_refine",
        format_table(
            headers,
            rows,
            title=(
                f"Parallel refinement, paper scale "
                f"({netlist.num_gates} gates, "
                f"{len(netlist.hierarchy.children)} instances; "
                f"k={K}, b={B}, exhaustive pairing; "
                f"host cores: {os.cpu_count()})"
            ),
        ),
        # wall columns and the worker-count-dependent speedup ratios
        # are host-dependent; the JSON rows keep only the deterministic
        # fields, the walls go to host_timings
        rows=[
            {k: v for k, v in row.items()
             if k not in ("ideal_speedup", "utilization",
                          "refine_wall_s", "measured_speedup")}
            for row in table_rows(headers, rows)
        ],
        params={"circuit": "viterbi-paper", "k": K, "b": B,
                "pairing": "exhaustive", "host_cpus": os.cpu_count() or 1},
        counters={"part.cut_size": serial_result.cut_size,
                  "part.balanced": int(serial_result.balanced)},
        host_timings=host_timings,
        recorder=serial_rec,
    )

    # the contract itself: any worker count, same partition bytes
    for workers in WORKER_COUNTS[1:]:
        assert (runs[workers][0].assignment.tobytes()
                == serial_result.assignment.tobytes()), (
            f"workers={workers} diverged from serial"
        )

    # ... and same merged telemetry bytes: every counter, maximum,
    # phase-call count and span-structure quantity must survive the
    # worker fan-out + task-index-order merge unchanged
    digests = {
        workers: _digest(rec, result.cut_size, result.balanced)
        for workers, (result, rec) in runs.items()
    }
    assert len(set(digests.values())) == 1, (
        f"merged telemetry digests diverged across worker counts: {digests}"
    )

    # structural speedup the round shapes admit at 4 workers: the
    # tournament's 8-pair rounds pack into 2 slots, so this is exact
    # and deterministic — the acceptance bar is 1.5x
    ideal_at_4 = runs[4][1].host_timings()["part.refine.ideal_speedup"]
    assert ideal_at_4 >= 1.5, f"structural speedup only {ideal_at_4}"

    # measured wall speedup needs the cores to exist before it means
    # anything; on a big-enough host, 4 workers must beat 1.5x
    if (os.cpu_count() or 1) >= 4:
        measured = serial_wall / runs[4][1].host_timings()["partition.refine"]
        assert measured >= 1.5, f"measured speedup only {measured:.2f}x"
