"""Heuristic pre-simulation (Figure 3) vs the brute-force sweep.

Paper §3.4: the heuristic sweeps b upward from 7.5 per k, abandoning a
k on the first non-improving speedup; it saves runs but "could be
trapped in the local minimum".  This benchmark measures both the saving
and the quality gap.
"""

from _shared import CFG, emit, presim_study

from repro.bench import format_kv, heuristic_vs_brute_force


def test_heuristic_vs_brute_force(benchmark):
    def compute():
        return heuristic_vs_brute_force(CFG, brute=presim_study())

    comp = benchmark.pedantic(compute, rounds=1, iterations=1)
    block = format_kv(
        {
            "brute-force runs": comp.brute.runs,
            "heuristic runs": comp.heuristic.runs,
            "runs saved": comp.runs_saved,
            "brute-force best": f"(k={comp.brute.best.k}, b={comp.brute.best.b}) "
                                 f"speedup {comp.brute.best.speedup:.2f}",
            "heuristic best": f"(k={comp.heuristic.best.k}, b={comp.heuristic.best.b}) "
                               f"speedup {comp.heuristic.best.speedup:.2f}",
            "speedup gap (local-minimum cost)": f"{comp.speedup_gap:.3f}",
        },
        title="Heuristic (Fig 3) vs brute-force pre-simulation",
    )
    emit(
        "heuristic_presim",
        block,
        counters={
            "bench.brute_force_runs": comp.brute.runs,
            "bench.heuristic_runs": comp.heuristic.runs,
            "bench.runs_saved": comp.runs_saved,
            "bench.speedup_gap": comp.speedup_gap,
        },
        rows=[
            {"method": "brute", "k": comp.brute.best.k, "b": comp.brute.best.b,
             "speedup": comp.brute.best.speedup},
            {"method": "heuristic", "k": comp.heuristic.best.k,
             "b": comp.heuristic.best.b, "speedup": comp.heuristic.best.speedup},
        ],
    )
    assert comp.heuristic.runs <= comp.brute.runs
    assert comp.speedup_gap >= -1e-9  # brute force is the envelope
