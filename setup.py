"""Legacy setup shim.

`pip install -e .` on this offline box lacks the `wheel` package that
setuptools' PEP 660 editable path requires; `python setup.py develop`
(or the pre-installed `.pth` shim) provides the same editable install.
"""
from setuptools import setup

setup()
